//! Flat, dynamically typed rows with a stable wire encoding.
//!
//! Queries operate on records whose values are column maps. The encoding is
//! textual and self-describing: `col=i:123|name=s:alice|score=f:1.5`, with
//! `%`-escapes for the delimiter characters inside strings.

use bytes::Bytes;
use kstreams::error::StreamsError;
use kstreams::kserde::KSerde;
use std::collections::BTreeMap;
use std::fmt;

/// A column value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Float(f64),
}

impl Value {
    /// Numeric view (ints widen to float) for comparisons and SUM/MIN/MAX.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// String view for grouping keys.
    pub fn as_key_string(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => f.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

/// A flat record: ordered column → value map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    columns: BTreeMap<String, Value>,
}

impl Row {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style column insertion.
    pub fn with(mut self, column: &str, value: Value) -> Self {
        self.columns.insert(column.to_string(), value);
        self
    }

    pub fn set(&mut self, column: &str, value: Value) {
        self.columns.insert(column.to_string(), value);
    }

    pub fn get(&self, column: &str) -> Option<&Value> {
        self.columns.get(column)
    }

    pub fn columns(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.columns.iter()
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

fn escape(s: &str) -> String {
    s.replace('%', "%25").replace('|', "%7C").replace('=', "%3D")
}

fn unescape(s: &str) -> String {
    s.replace("%3D", "=").replace("%7C", "|").replace("%25", "%")
}

impl KSerde for Row {
    fn to_bytes(&self) -> Bytes {
        let encoded: Vec<String> = self
            .columns
            .iter()
            .map(|(k, v)| {
                let tagged = match v {
                    Value::Str(s) => format!("s:{}", escape(s)),
                    Value::Int(i) => format!("i:{i}"),
                    Value::Float(f) => format!("f:{f}"),
                };
                format!("{}={tagged}", escape(k))
            })
            .collect();
        Bytes::from(encoded.join("|").into_bytes())
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, StreamsError> {
        let s = std::str::from_utf8(bytes)
            .map_err(|e| StreamsError::Serde(format!("row not utf8: {e}")))?;
        let mut row = Row::new();
        if s.is_empty() {
            return Ok(row);
        }
        for part in s.split('|') {
            let (key, tagged) = part
                .split_once('=')
                .ok_or_else(|| StreamsError::Serde(format!("bad row column: {part}")))?;
            let (tag, payload) = tagged
                .split_once(':')
                .ok_or_else(|| StreamsError::Serde(format!("bad row value: {tagged}")))?;
            let value = match tag {
                "s" => Value::Str(unescape(payload)),
                "i" => Value::Int(
                    payload.parse().map_err(|e| StreamsError::Serde(format!("bad int: {e}")))?,
                ),
                "f" => Value::Float(
                    payload.parse().map_err(|e| StreamsError::Serde(format!("bad float: {e}")))?,
                ),
                other => return Err(StreamsError::Serde(format!("unknown tag {other}"))),
            };
            row.set(&unescape(key), value);
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_types() {
        let row = Row::new()
            .with("name", Value::Str("alice".into()))
            .with("age", Value::Int(42))
            .with("score", Value::Float(1.5));
        let bytes = row.to_bytes();
        assert_eq!(Row::from_bytes(&bytes).unwrap(), row);
    }

    #[test]
    fn round_trip_delimiters_in_strings() {
        let row = Row::new().with("tricky", Value::Str("a=b|c%d".into()));
        let bytes = row.to_bytes();
        assert_eq!(Row::from_bytes(&bytes).unwrap(), row);
    }

    #[test]
    fn empty_row() {
        let row = Row::new();
        assert_eq!(Row::from_bytes(&row.to_bytes()).unwrap(), row);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Row::from_bytes(b"not-a-row").is_err());
        assert!(Row::from_bytes(b"col=x:5").is_err());
        assert!(Row::from_bytes(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Int(7).as_key_string(), "7");
    }
}
