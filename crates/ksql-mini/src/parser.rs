//! Parser for the mini ksql dialect.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT <group_col> , <agg>
//! FROM <topic>
//! [ WHERE <col> <op> <literal> ]
//! [ WINDOW TUMBLING ( <n> <unit> )
//!   | WINDOW HOPPING ( <n> <unit> ) ADVANCE BY ( <n> <unit> )
//!   [ GRACE ( <n> <unit> ) ] ]
//! GROUP BY <group_col>
//! [ EMIT CHANGES | EMIT FINAL ]
//! INTO <topic>
//!
//! <agg>  := COUNT(*) | SUM(<col>) | MIN(<col>) | MAX(<col>)
//! <op>   := = | != | < | <= | > | >=
//! <unit> := MILLISECONDS | SECONDS | MINUTES | HOURS
//! ```

use crate::row::Value;

/// Aggregation function of the query.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    CountAll,
    Sum(String),
    Min(String),
    Max(String),
}

/// WHERE-clause comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    pub column: String,
    pub op: String,
    pub literal: Value,
}

/// Window specification (tumbling when `advance_ms == size_ms`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    pub size_ms: i64,
    pub advance_ms: i64,
    pub grace_ms: i64,
}

/// Output mode: every revision, or one final result per window (§5's
/// suppress).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Emit {
    #[default]
    Changes,
    Final,
}

/// A parsed continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub select_key: String,
    pub aggregate: Aggregate,
    pub from_topic: String,
    pub filter: Option<Comparison>,
    pub window: Option<WindowSpec>,
    pub group_by: String,
    pub emit: Emit,
    pub into_topic: String,
}

struct Tokens {
    items: Vec<String>,
    pos: usize,
}

impl Tokens {
    fn new(sql: &str) -> Self {
        // Pad punctuation so it splits as its own tokens; comparison
        // operators (`=`, `!=`, `<`, `<=`, `>`, `>=`) are handled in one
        // pass so two-character forms stay whole.
        let padded = sql.replace('(', " ( ").replace(')', " ) ").replace(',', " , ");
        let mut spaced = String::new();
        let mut chars = padded.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '<' | '>' | '!' | '=' => {
                    spaced.push(' ');
                    spaced.push(c);
                    if chars.peek() == Some(&'=') {
                        spaced.push(chars.next().expect("peeked"));
                    }
                    spaced.push(' ');
                }
                _ => spaced.push(c),
            }
        }
        Self { items: spaced.split_whitespace().map(ToString::to_string).collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&str> {
        self.items.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Result<String, String> {
        let t = self
            .items
            .get(self.pos)
            .cloned()
            .ok_or_else(|| "unexpected end of query".to_string())?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, keyword: &str) -> Result<(), String> {
        let t = self.next()?;
        if t.eq_ignore_ascii_case(keyword) {
            Ok(())
        } else {
            Err(format!("expected {keyword}, found {t}"))
        }
    }

    fn peek_is(&self, keyword: &str) -> bool {
        self.peek().is_some_and(|t| t.eq_ignore_ascii_case(keyword))
    }
}

fn parse_duration(tokens: &mut Tokens) -> Result<i64, String> {
    tokens.expect("(")?;
    let n: i64 = tokens.next()?.parse().map_err(|e| format!("bad duration number: {e}"))?;
    let unit = tokens.next()?;
    let ms = match unit.to_ascii_uppercase().as_str() {
        "MILLISECONDS" | "MILLISECOND" | "MS" => n,
        "SECONDS" | "SECOND" => n * 1_000,
        "MINUTES" | "MINUTE" => n * 60_000,
        "HOURS" | "HOUR" => n * 3_600_000,
        other => return Err(format!("unknown time unit {other}")),
    };
    tokens.expect(")")?;
    Ok(ms)
}

fn parse_literal(token: &str) -> Value {
    if let Ok(i) = token.parse::<i64>() {
        Value::Int(i)
    } else if let Ok(f) = token.parse::<f64>() {
        Value::Float(f)
    } else {
        Value::Str(token.trim_matches('\'').to_string())
    }
}

/// Parse a query string.
pub fn parse(sql: &str) -> Result<Query, String> {
    let mut t = Tokens::new(sql);
    t.expect("SELECT")?;
    let select_key = t.next()?;
    t.expect(",")?;
    let agg_name = t.next()?;
    t.expect("(")?;
    let agg_arg = t.next()?;
    t.expect(")")?;
    let aggregate = match agg_name.to_ascii_uppercase().as_str() {
        "COUNT" if agg_arg == "*" => Aggregate::CountAll,
        "COUNT" => return Err("only COUNT(*) is supported".into()),
        "SUM" => Aggregate::Sum(agg_arg),
        "MIN" => Aggregate::Min(agg_arg),
        "MAX" => Aggregate::Max(agg_arg),
        other => return Err(format!("unknown aggregate {other}")),
    };
    t.expect("FROM")?;
    let from_topic = t.next()?;

    let filter = if t.peek_is("WHERE") {
        t.next()?;
        let column = t.next()?;
        let op = t.next()?;
        if !["=", "!=", "<", "<=", ">", ">="].contains(&op.as_str()) {
            return Err(format!("unknown comparison operator {op}"));
        }
        let literal = parse_literal(&t.next()?);
        Some(Comparison { column, op, literal })
    } else {
        None
    };

    let window = if t.peek_is("WINDOW") {
        t.next()?;
        let kind = t.next()?;
        let (size_ms, advance_ms) = match kind.to_ascii_uppercase().as_str() {
            "TUMBLING" => {
                let size = parse_duration(&mut t)?;
                (size, size)
            }
            "HOPPING" => {
                let size = parse_duration(&mut t)?;
                t.expect("ADVANCE")?;
                t.expect("BY")?;
                let advance = parse_duration(&mut t)?;
                if advance <= 0 || advance > size {
                    return Err("ADVANCE BY must be positive and at most the window size".into());
                }
                (size, advance)
            }
            other => return Err(format!("unknown window kind {other}")),
        };
        let grace_ms = if t.peek_is("GRACE") {
            t.next()?;
            parse_duration(&mut t)?
        } else {
            0
        };
        Some(WindowSpec { size_ms, advance_ms, grace_ms })
    } else {
        None
    };

    t.expect("GROUP")?;
    t.expect("BY")?;
    let group_by = t.next()?;
    if group_by != select_key {
        return Err(format!(
            "GROUP BY column ({group_by}) must match the selected key ({select_key})"
        ));
    }

    let emit = if t.peek_is("EMIT") {
        t.next()?;
        let mode = t.next()?;
        match mode.to_ascii_uppercase().as_str() {
            "CHANGES" => Emit::Changes,
            "FINAL" => Emit::Final,
            other => return Err(format!("unknown EMIT mode {other}")),
        }
    } else {
        Emit::Changes
    };
    if emit == Emit::Final && window.is_none() {
        return Err("EMIT FINAL requires a WINDOW clause".into());
    }

    t.expect("INTO")?;
    let into_topic = t.next()?;
    if let Some(extra) = t.peek() {
        return Err(format!("unexpected trailing token {extra}"));
    }
    Ok(Query { select_key, aggregate, from_topic, filter, window, group_by, emit, into_topic })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_figure2_query() {
        let q = parse(
            "SELECT category, COUNT(*) FROM pageviews \
             WHERE period >= 30000 \
             WINDOW TUMBLING (5 SECONDS) GRACE (10 SECONDS) \
             GROUP BY category INTO pageview_counts",
        )
        .unwrap();
        assert_eq!(q.select_key, "category");
        assert_eq!(q.aggregate, Aggregate::CountAll);
        assert_eq!(q.from_topic, "pageviews");
        let f = q.filter.unwrap();
        assert_eq!((f.column.as_str(), f.op.as_str()), ("period", ">="));
        assert_eq!(f.literal, Value::Int(30000));
        assert_eq!(
            q.window,
            Some(WindowSpec { size_ms: 5_000, advance_ms: 5_000, grace_ms: 10_000 })
        );
        assert_eq!(q.emit, Emit::Changes);
        assert_eq!(q.into_topic, "pageview_counts");
    }

    #[test]
    fn parses_minimal_unwindowed_sum() {
        let q = parse("SELECT user, SUM(amount) FROM orders GROUP BY user INTO totals").unwrap();
        assert_eq!(q.aggregate, Aggregate::Sum("amount".into()));
        assert!(q.window.is_none());
        assert!(q.filter.is_none());
    }

    #[test]
    fn parses_emit_final() {
        let q = parse(
            "SELECT k, MAX(v) FROM t WINDOW TUMBLING (1 SECONDS) GROUP BY k EMIT FINAL INTO o",
        )
        .unwrap();
        assert_eq!(q.emit, Emit::Final);
        assert_eq!(q.aggregate, Aggregate::Max("v".into()));
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse("select k, count(*) from t group by k into o").is_ok());
    }

    #[test]
    fn string_literal_filter() {
        let q = parse("SELECT k, COUNT(*) FROM t WHERE city = 'berlin' GROUP BY k INTO o").unwrap();
        assert_eq!(q.filter.unwrap().literal, Value::Str("berlin".into()));
    }

    #[test]
    fn rejects_emit_final_without_window() {
        let err = parse("SELECT k, COUNT(*) FROM t GROUP BY k EMIT FINAL INTO o").unwrap_err();
        assert!(err.contains("WINDOW"), "{err}");
    }

    #[test]
    fn rejects_mismatched_group_by() {
        let err = parse("SELECT a, COUNT(*) FROM t GROUP BY b INTO o").unwrap_err();
        assert!(err.contains("must match"), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT k, COUNT(*) FROM t GROUP BY k INTO o extra").is_err());
        assert!(parse("SELECT k, AVG(x) FROM t GROUP BY k INTO o").is_err());
        assert!(parse("SELECT k, COUNT(*) FROM t WHERE a ~ 3 GROUP BY k INTO o").is_err());
    }

    #[test]
    fn parses_hopping_windows() {
        let q = parse(
            "SELECT k, COUNT(*) FROM t WINDOW HOPPING (10 SECONDS) ADVANCE BY (5 SECONDS) \
             GROUP BY k INTO o",
        )
        .unwrap();
        assert_eq!(q.window, Some(WindowSpec { size_ms: 10_000, advance_ms: 5_000, grace_ms: 0 }));
    }

    #[test]
    fn rejects_bad_hopping_advance() {
        let err = parse(
            "SELECT k, COUNT(*) FROM t WINDOW HOPPING (1 SECONDS) ADVANCE BY (5 SECONDS) \
             GROUP BY k INTO o",
        )
        .unwrap_err();
        assert!(err.contains("ADVANCE BY"), "{err}");
    }

    #[test]
    fn duration_units() {
        for (unit, ms) in [
            ("500 MILLISECONDS", 500),
            ("2 SECONDS", 2_000),
            ("3 MINUTES", 180_000),
            ("1 HOURS", 3_600_000),
        ] {
            let q = parse(&format!(
                "SELECT k, COUNT(*) FROM t WINDOW TUMBLING ({unit}) GROUP BY k INTO o"
            ))
            .unwrap();
            assert_eq!(q.window.unwrap().size_ms, ms, "{unit}");
        }
    }
}
