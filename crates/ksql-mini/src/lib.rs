//! # ksql-mini — continuous queries over kstreams
//!
//! The paper (§3.2) describes ksqlDB as "an event streaming database built
//! to work with streaming data in Apache Kafka … continuous queries
//! submitted to ksqlDB are compiled and executed as Kafka Streams
//! applications that run indefinitely until terminated."
//!
//! This crate reproduces that layer in miniature:
//!
//! * [`row::Row`] — a flat, dynamically typed record (string/int/float
//!   columns) with a stable wire encoding,
//! * [`parser`] — a hand-rolled parser for a ksql-like dialect (tumbling and hopping windows):
//!
//!   ```sql
//!   SELECT category, COUNT(*)
//!   FROM pageviews
//!   WHERE period >= 30000
//!   WINDOW TUMBLING (5 SECONDS) GRACE (10 SECONDS)
//!   GROUP BY category
//!   EMIT CHANGES
//!   INTO pageview_counts
//!   ```
//!
//! * [`compiler`] — compiles the parsed query into a `kstreams` topology,
//!   which then runs with the full exactly-once / revision-processing
//!   machinery of the underlying library. `EMIT FINAL` maps to the suppress
//!   operator; `EMIT CHANGES` (the default) streams every revision.

pub mod compiler;
pub mod parser;
pub mod row;

pub use compiler::compile;
pub use parser::{parse, Aggregate, Comparison, Emit, Query, WindowSpec};
pub use row::{Row, Value};

use kstreams::error::StreamsError;
use kstreams::topology::Topology;

/// Parse and compile a query in one step.
pub fn query_to_topology(sql: &str) -> Result<Topology, StreamsError> {
    let query = parse(sql).map_err(StreamsError::InvalidOperation)?;
    compile(&query)
}
