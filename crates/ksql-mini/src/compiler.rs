//! Compiles parsed queries to `kstreams` topologies — the miniature version
//! of "continuous queries submitted to ksqlDB are compiled and executed as
//! Kafka Streams applications" (§3.2).
//!
//! The generated topology is ordinary kstreams DSL output: a re-keying
//! `group_by` (which inserts a repartition topic, §3.2), an aggregation
//! with a changelogged store, optional windowing with grace (§5), and
//! optional suppression for `EMIT FINAL`.

use crate::parser::{Aggregate, Comparison, Emit, Query};
use crate::row::{Row, Value};
use kstreams::error::StreamsError;
use kstreams::topology::Topology;
use kstreams::{StreamsBuilder, TimeWindows};

fn matches(cmp: &Comparison, row: &Row) -> bool {
    let Some(actual) = row.get(&cmp.column) else { return false };
    match (&cmp.literal, actual) {
        (Value::Str(want), Value::Str(got)) => match cmp.op.as_str() {
            "=" => got == want,
            "!=" => got != want,
            "<" => got < want,
            "<=" => got <= want,
            ">" => got > want,
            ">=" => got >= want,
            _ => false,
        },
        (lit, got) => {
            let (Some(want), Some(got)) = (lit.as_f64(), got.as_f64()) else {
                return false;
            };
            match cmp.op.as_str() {
                "=" => got == want,
                "!=" => got != want,
                "<" => got < want,
                "<=" => got <= want,
                ">" => got > want,
                ">=" => got >= want,
                _ => false,
            }
        }
    }
}

/// Compile a parsed [`Query`] into a runnable topology.
pub fn compile(q: &Query) -> Result<Topology, StreamsError> {
    let builder = StreamsBuilder::new();
    let stream = builder.stream::<String, Row>(&q.from_topic);

    let stream = match &q.filter {
        Some(cmp) => {
            let cmp = cmp.clone();
            stream.filter(move |_k, row| matches(&cmp, row))
        }
        None => stream,
    };

    // Re-key by the GROUP BY column (inserts the repartition topic, §3.2).
    let group_col = q.group_by.clone();
    let grouped = stream.group_by(move |_k, row: &Row| {
        row.get(&group_col).map(Value::as_key_string).unwrap_or_default()
    });

    let store = format!("ksql-{}-store", q.into_topic);
    let agg = q.aggregate.clone();
    let agg_fn = move |row: &Row, acc: f64| -> f64 {
        match &agg {
            Aggregate::CountAll => acc + 1.0,
            Aggregate::Sum(col) => acc + row.get(col).and_then(Value::as_f64).unwrap_or(0.0),
            Aggregate::Min(col) => match row.get(col).and_then(Value::as_f64) {
                Some(v) => acc.min(v),
                None => acc,
            },
            Aggregate::Max(col) => match row.get(col).and_then(Value::as_f64) {
                Some(v) => acc.max(v),
                None => acc,
            },
        }
    };
    let init = {
        let agg = q.aggregate.clone();
        move || -> f64 {
            match agg {
                Aggregate::Min(_) => f64::INFINITY,
                Aggregate::Max(_) => f64::NEG_INFINITY,
                _ => 0.0,
            }
        }
    };

    match q.window {
        Some(w) => {
            let table = grouped
                .windowed_by(TimeWindows::of(w.size_ms).advance_by(w.advance_ms).grace(w.grace_ms))
                .aggregate(&store, init, agg_fn);
            let table = match q.emit {
                Emit::Final => table.suppress_until_window_close(),
                Emit::Changes => table,
            };
            table.to_stream().to(&q.into_topic);
        }
        None => {
            grouped.aggregate(&store, init, agg_fn).to_stream().to(&q.into_topic);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn figure2_query_compiles_to_two_subtopologies() {
        let q = parse(
            "SELECT category, COUNT(*) FROM pageviews \
             WHERE period >= 30000 \
             WINDOW TUMBLING (5 SECONDS) GRACE (10 SECONDS) \
             GROUP BY category INTO counts",
        )
        .unwrap();
        let topology = compile(&q).unwrap();
        assert_eq!(
            topology.subtopologies.len(),
            2,
            "group_by re-keys ⇒ repartition boundary (§3.2):\n{}",
            topology.describe()
        );
        assert!(topology.stores.contains_key("ksql-counts-store"));
    }

    #[test]
    fn unwindowed_query_compiles() {
        let q = parse("SELECT user, SUM(amount) FROM orders GROUP BY user INTO totals").unwrap();
        let topology = compile(&q).unwrap();
        assert!(topology.describe().contains("totals"));
    }

    #[test]
    fn emit_final_adds_suppress_node() {
        let q = parse(
            "SELECT k, COUNT(*) FROM t WINDOW TUMBLING (1 SECONDS) GROUP BY k EMIT FINAL INTO o",
        )
        .unwrap();
        let topology = compile(&q).unwrap();
        assert!(topology.describe().contains("SUPPRESS"), "{}", topology.describe());
    }

    #[test]
    fn where_comparisons() {
        let row = Row::new().with("n", Value::Int(5)).with("s", Value::Str("abc".into()));
        let check = |col: &str, op: &str, lit: Value| {
            matches(&Comparison { column: col.into(), op: op.into(), literal: lit }, &row)
        };
        assert!(check("n", "=", Value::Int(5)));
        assert!(check("n", ">=", Value::Int(5)));
        assert!(check("n", "<", Value::Float(5.5)));
        assert!(!check("n", "!=", Value::Int(5)));
        assert!(check("s", "=", Value::Str("abc".into())));
        assert!(check("s", ">", Value::Str("abb".into())));
        assert!(!check("missing", "=", Value::Int(1)), "absent column never matches");
        assert!(!check("s", "=", Value::Int(1)), "type mismatch never matches");
    }
}
