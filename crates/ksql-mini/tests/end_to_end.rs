//! End-to-end continuous queries: SQL string → topology → exactly-once
//! execution on the simulated cluster.

use kbroker::{Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig};
use ksql_mini::{query_to_topology, Row, Value};
use kstreams::{KSerde, KafkaStreamsApp, StreamsConfig, Windowed};
use simkit::ManualClock;
use std::collections::HashMap;
use std::sync::Arc;

struct Setup {
    cluster: Cluster,
    clock: ManualClock,
}

fn setup(topics: &[&str]) -> Setup {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(1).replication(1).clock(clock.shared()).build();
    for t in topics {
        cluster.create_topic(t, TopicConfig::new(2)).unwrap();
    }
    Setup { cluster, clock }
}

fn send_row(cluster: &Cluster, topic: &str, key: &str, row: Row, ts: i64) {
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    p.send(topic, Some(key.to_string().to_bytes()), Some(row.to_bytes()), ts).unwrap();
    p.flush().unwrap();
}

fn run_query(s: &Setup, sql: &str, steps: usize) -> KafkaStreamsApp {
    let topology = Arc::new(query_to_topology(sql).unwrap());
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        topology,
        StreamsConfig::new("ksql-query").exactly_once().with_commit_interval_ms(10),
        "q0",
    );
    app.start().unwrap();
    for _ in 0..steps {
        app.step().unwrap();
        s.clock.advance(10);
    }
    app
}

fn drain_f64<K: KSerde + std::hash::Hash + Eq>(cluster: &Cluster, topic: &str) -> HashMap<K, f64> {
    let mut c = Consumer::new(cluster.clone(), "v", ConsumerConfig::default().read_committed());
    c.assign(cluster.partitions_of(topic).unwrap()).unwrap();
    let mut out = HashMap::new();
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            out.insert(
                K::from_bytes(rec.key.as_ref().unwrap()).unwrap(),
                f64::from_bytes(rec.value.as_ref().unwrap()).unwrap(),
            );
        }
    }
    out
}

fn pageview(category: &str, period: i64) -> Row {
    Row::new().with("category", Value::Str(category.into())).with("period", Value::Int(period))
}

#[test]
fn figure2_as_a_continuous_query() {
    // The exact query of the paper's Figure 2 example, in SQL form.
    let s = setup(&["pageviews", "counts"]);
    send_row(&s.cluster, "pageviews", "alice", pageview("news", 45_000), 1_000);
    send_row(&s.cluster, "pageviews", "bob", pageview("news", 31_000), 2_000);
    send_row(&s.cluster, "pageviews", "carol", pageview("sports", 10_000), 2_500); // filtered
    send_row(&s.cluster, "pageviews", "dave", pageview("sports", 99_000), 3_000);
    send_row(&s.cluster, "pageviews", "alice", pageview("news", 60_000), 6_000); // next window
    let mut app = run_query(
        &s,
        "SELECT category, COUNT(*) FROM pageviews \
         WHERE period >= 30000 \
         WINDOW TUMBLING (5 SECONDS) GRACE (10 SECONDS) \
         GROUP BY category INTO counts",
        20,
    );
    let counts = drain_f64::<Windowed<String>>(&s.cluster, "counts");
    assert_eq!(counts[&Windowed::new("news".into(), 0)], 2.0);
    assert_eq!(counts[&Windowed::new("sports".into(), 0)], 1.0);
    assert_eq!(counts[&Windowed::new("news".into(), 5_000)], 1.0);
    app.close().unwrap();
}

#[test]
fn unwindowed_sum_query() {
    let s = setup(&["orders", "totals"]);
    for (user, amount, ts) in [("a", 10, 0), ("b", 5, 1), ("a", 7, 2), ("b", 1, 3), ("a", 3, 4)] {
        let row =
            Row::new().with("user", Value::Str(user.into())).with("amount", Value::Int(amount));
        send_row(&s.cluster, "orders", user, row, ts);
    }
    let mut app =
        run_query(&s, "SELECT user, SUM(amount) FROM orders GROUP BY user INTO totals", 20);
    let totals = drain_f64::<String>(&s.cluster, "totals");
    assert_eq!(totals["a"], 20.0);
    assert_eq!(totals["b"], 6.0);
    app.close().unwrap();
}

#[test]
fn min_max_queries() {
    let s = setup(&["ticks", "mins", "maxs"]);
    for (sym, price, ts) in [("X", 9.0, 0), ("X", 4.5, 1), ("X", 7.0, 2)] {
        let row = Row::new().with("sym", Value::Str(sym.into())).with("price", Value::Float(price));
        send_row(&s.cluster, "ticks", sym, row, ts);
    }
    let mut app1 = run_query(&s, "SELECT sym, MIN(price) FROM ticks GROUP BY sym INTO mins", 20);
    assert_eq!(drain_f64::<String>(&s.cluster, "mins")["X"], 4.5);
    app1.close().unwrap();
    let s2 = setup(&["ticks", "maxs"]);
    for (sym, price, ts) in [("X", 9.0, 0), ("X", 4.5, 1), ("X", 7.0, 2)] {
        let row = Row::new().with("sym", Value::Str(sym.into())).with("price", Value::Float(price));
        send_row(&s2.cluster, "ticks", sym, row, ts);
    }
    let mut app2 = run_query(&s2, "SELECT sym, MAX(price) FROM ticks GROUP BY sym INTO maxs", 20);
    assert_eq!(drain_f64::<String>(&s2.cluster, "maxs")["X"], 9.0);
    app2.close().unwrap();
}

#[test]
fn emit_final_suppresses_intermediate_revisions() {
    let s = setup(&["events", "finals"]);
    for ts in [100, 200, 300] {
        send_row(&s.cluster, "events", "k", Row::new().with("k", Value::Str("k".into())), ts);
    }
    let mut app = run_query(
        &s,
        "SELECT k, COUNT(*) FROM events WINDOW TUMBLING (1 SECONDS) \
         GROUP BY k EMIT FINAL INTO finals",
        10,
    );
    // Nothing emitted while the window is open.
    assert!(drain_f64::<Windowed<String>>(&s.cluster, "finals").is_empty());
    // Advance stream time past the window: exactly one final result.
    send_row(&s.cluster, "events", "k", Row::new().with("k", Value::Str("k".into())), 2_500);
    for _ in 0..10 {
        app.step().unwrap();
        s.clock.advance(10);
    }
    let finals = drain_f64::<Windowed<String>>(&s.cluster, "finals");
    assert_eq!(finals[&Windowed::new("k".into(), 0)], 3.0);
    app.close().unwrap();
}

#[test]
fn query_survives_out_of_order_input_with_revisions() {
    // The completeness machinery (§5) works through the SQL layer too.
    let s = setup(&["events", "out"]);
    let mut app = run_query(
        &s,
        "SELECT k, COUNT(*) FROM events WINDOW TUMBLING (5 SECONDS) GRACE (10 SECONDS) \
         GROUP BY k INTO out",
        2,
    );
    let row = || Row::new().with("k", Value::Str("k".into()));
    for ts in [1_000, 6_000, 2_000] {
        send_row(&s.cluster, "events", "k", row(), ts);
        for _ in 0..5 {
            app.step().unwrap();
            s.clock.advance(10);
        }
    }
    let counts = drain_f64::<Windowed<String>>(&s.cluster, "out");
    assert_eq!(counts[&Windowed::new("k".into(), 0)], 2.0, "revised after late record");
    assert_eq!(counts[&Windowed::new("k".into(), 5_000)], 1.0);
    assert_eq!(app.metrics().revisions_emitted, 1);
    app.close().unwrap();
}

#[test]
fn hopping_window_query_counts_overlaps() {
    let s = setup(&["events", "hops"]);
    let row = || Row::new().with("k", Value::Str("k".into()));
    // ts 7s lands in hopping windows [0,10s) and [5s,15s).
    send_row(&s.cluster, "events", "k", row(), 7_000);
    let mut app = run_query(
        &s,
        "SELECT k, COUNT(*) FROM events \
         WINDOW HOPPING (10 SECONDS) ADVANCE BY (5 SECONDS) GRACE (60 SECONDS) \
         GROUP BY k INTO hops",
        20,
    );
    let counts = drain_f64::<Windowed<String>>(&s.cluster, "hops");
    assert_eq!(counts[&Windowed::new("k".into(), 0)], 1.0);
    assert_eq!(counts[&Windowed::new("k".into(), 5_000)], 1.0);
    app.close().unwrap();
}
