//! The checkpoint-based streaming engine (Flink-style baseline for
//! Figure 5.b).
//!
//! One keyed-aggregation pipeline: Kafka source partitions → barrier-aligned
//! keyed reduce → transactional Kafka sink. Every `checkpoint_interval_ms`
//! the source injects a barrier; when the operator aligns it snapshots its
//! state (incremental: dirty keys only) to the object store, then the
//! buffered output transaction commits. Consumers with read-committed
//! isolation therefore see results only after *checkpoint interval +
//! snapshot upload* — the latency structure §4.3 measures.
//!
//! Recovery rolls back to the last completed checkpoint: state and source
//! offsets are read back from the object store and the open transaction of
//! the failed incarnation is aborted, so replay produces each committed
//! result exactly once. (Simplification vs real Flink: we commit the sink
//! transaction *before* writing the checkpoint metadata, so a crash exactly
//! between the two would replay one epoch; Flink closes this window with
//! `recoverAndCommit` on pre-committed transactions.)

use crate::barrier::{Aligner, Channel, Element, Released};
use crate::object_store::{ObjectStore, ObjectStoreCostModel};
use bytes::Bytes;
use kbroker::producer::{Producer, ProducerConfig};
use kbroker::{BrokerError, Cluster, IsolationLevel, TopicPartition};
use std::collections::HashMap;
use std::sync::Arc;

/// Aggregation step: `(current_state, incoming_value) → new_state`.
pub type ReduceFn = Arc<dyn Fn(Option<&Bytes>, &Bytes) -> Bytes + Send + Sync>;

/// Engine configuration.
#[derive(Clone)]
pub struct CheckpointConfig {
    /// Application id (transactional id of the sink).
    pub app_id: String,
    /// Checkpoint (and hence commit) interval.
    pub checkpoint_interval_ms: i64,
    /// Snapshot only keys dirtied since the last checkpoint.
    pub incremental: bool,
    /// Object-store cost model.
    pub cost: ObjectStoreCostModel,
    /// Max records fetched per partition per step.
    pub max_poll_records: usize,
}

impl CheckpointConfig {
    pub fn new(app_id: impl Into<String>, checkpoint_interval_ms: i64) -> Self {
        Self {
            app_id: app_id.into(),
            checkpoint_interval_ms,
            incremental: true,
            cost: ObjectStoreCostModel::default(),
            max_poll_records: 1024,
        }
    }
}

/// Cumulative engine counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointStats {
    pub records_processed: u64,
    pub records_emitted: u64,
    pub checkpoints_completed: u64,
    pub checkpoint_latency_total_ms: u64,
    pub restore_count: u64,
}

/// The running engine instance.
pub struct CheckpointApp {
    cluster: Cluster,
    config: CheckpointConfig,
    store: ObjectStore,
    input_tps: Vec<TopicPartition>,
    output_topic: String,
    /// Fetch positions (reset to checkpointed offsets on recovery).
    positions: HashMap<TopicPartition, i64>,
    channels: Vec<Channel>,
    aligner: Aligner,
    state: HashMap<Bytes, Bytes>,
    dirty: std::collections::HashSet<Bytes>,
    reduce: ReduceFn,
    producer: Producer,
    txn_open: bool,
    epoch: u64,
    /// Offsets as of each injected (not yet completed) barrier.
    pending_offsets: HashMap<u64, HashMap<TopicPartition, i64>>,
    last_barrier_ms: i64,
    stats: CheckpointStats,
}

impl CheckpointApp {
    pub fn new(
        cluster: Cluster,
        config: CheckpointConfig,
        input_topic: &str,
        output_topic: &str,
        reduce: ReduceFn,
    ) -> Result<Self, BrokerError> {
        let input_tps = cluster.partitions_of(input_topic)?;
        let store = ObjectStore::new(cluster.clock().clone(), config.cost);
        let mut producer = Producer::new(
            cluster.clone(),
            ProducerConfig::transactional(config.app_id.clone()).with_batch_size(64),
        );
        producer.init_transactions()?;
        let n = input_tps.len();
        let now = cluster.now_ms();
        let mut app = Self {
            cluster,
            config,
            store,
            positions: input_tps.iter().map(|tp| (tp.clone(), 0)).collect(),
            input_tps,
            output_topic: output_topic.to_string(),
            channels: (0..n).map(|_| Channel::new()).collect(),
            aligner: Aligner::new(n),
            state: HashMap::new(),
            dirty: Default::default(),
            reduce,
            producer,
            txn_open: false,
            epoch: 0,
            pending_offsets: HashMap::new(),
            last_barrier_ms: now,
            stats: CheckpointStats::default(),
        };
        app.recover()?;
        Ok(app)
    }

    /// Engine counters.
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }

    /// Object-store I/O counters.
    pub fn object_store_stats(&self) -> crate::object_store::ObjectStoreStats {
        self.store.stats()
    }

    /// Access the underlying object store (so a restarted incarnation can
    /// share it).
    pub fn object_store(&self) -> &ObjectStore {
        &self.store
    }

    /// Replace the object store (restart against existing checkpoints).
    pub fn with_object_store(mut self, store: ObjectStore) -> Result<Self, BrokerError> {
        self.store = store;
        self.recover()?;
        Ok(self)
    }

    /// One engine round: maybe inject a barrier, fetch, process, checkpoint
    /// on alignment. Returns records processed.
    pub fn step(&mut self) -> Result<usize, BrokerError> {
        let now = self.cluster.now_ms();
        if now - self.last_barrier_ms >= self.config.checkpoint_interval_ms {
            self.epoch += 1;
            self.pending_offsets.insert(self.epoch, self.positions.clone());
            for ch in &mut self.channels {
                ch.push(Element::Barrier(self.epoch));
            }
            self.last_barrier_ms = now;
        }
        // Source: fetch into per-partition channels.
        for (i, tp) in self.input_tps.clone().into_iter().enumerate() {
            let pos = self.positions[&tp];
            let fetch = match self.cluster.fetch(
                &tp,
                pos,
                self.config.max_poll_records,
                IsolationLevel::ReadUncommitted,
            ) {
                Ok(f) => f,
                Err(BrokerError::NoLeader { .. }) => continue,
                Err(e) => return Err(e),
            };
            for (_, rec) in fetch.records() {
                self.channels[i].push(Element::Record {
                    key: rec.key.clone().unwrap_or_default(),
                    value: rec.value.clone().unwrap_or_default(),
                    ts: rec.timestamp,
                });
            }
            self.positions.insert(tp, fetch.next_offset);
        }
        // Operator: drain the aligner.
        let mut processed = 0;
        loop {
            match self.aligner.poll(&mut self.channels) {
                Released::Record { key, value, ts, .. } => {
                    let new = (self.reduce)(self.state.get(&key), &value);
                    self.state.insert(key.clone(), new.clone());
                    self.dirty.insert(key.clone());
                    if !self.txn_open {
                        self.producer.begin_transaction()?;
                        self.txn_open = true;
                    }
                    self.producer.send(&self.output_topic, Some(key), Some(new), ts)?;
                    self.stats.records_processed += 1;
                    self.stats.records_emitted += 1;
                    processed += 1;
                }
                Released::AlignedBarrier(epoch) => {
                    self.checkpoint(epoch)?;
                }
                Released::Idle => break,
            }
        }
        Ok(processed)
    }

    /// Snapshot state + offsets to the object store, then commit the epoch's
    /// output transaction. The per-file upload latency lands squarely on the
    /// end-to-end path (§4.3).
    fn checkpoint(&mut self, epoch: u64) -> Result<(), BrokerError> {
        let started = self.cluster.now_ms();
        // State file: full or incremental.
        let entries: Vec<(&Bytes, &Bytes)> = if self.config.incremental {
            self.state.iter().filter(|(k, _)| self.dirty.contains(*k)).collect()
        } else {
            self.state.iter().collect()
        };
        let mut blob = Vec::new();
        for (k, v) in entries {
            blob.extend_from_slice(&(k.len() as u32).to_be_bytes());
            blob.extend_from_slice(k);
            blob.extend_from_slice(&(v.len() as u32).to_be_bytes());
            blob.extend_from_slice(v);
        }
        self.store.put(&format!("{}/chk-{epoch}/state", self.config.app_id), blob);
        self.dirty.clear();

        // Sink transaction commits only now — after the snapshot uploaded.
        if self.txn_open {
            self.producer.commit_transaction()?;
            self.txn_open = false;
        }

        // Metadata file marks the checkpoint complete (offsets to resume
        // from). Written last: its presence means "epoch fully committed".
        let offsets = self.pending_offsets.remove(&epoch).unwrap_or_default();
        let meta: String = offsets
            .iter()
            .map(|(tp, off)| format!("{}|{}|{}\n", tp.topic, tp.partition, off))
            .collect();
        self.store.put(&format!("{}/chk-{epoch}/metadata", self.config.app_id), meta.into_bytes());

        self.stats.checkpoints_completed += 1;
        self.stats.checkpoint_latency_total_ms += (self.cluster.now_ms() - started).max(0) as u64;
        Ok(())
    }

    /// Roll back to the latest completed checkpoint, if any.
    fn recover(&mut self) -> Result<(), BrokerError> {
        let metas = self.store.list(&format!("{}/chk-", self.config.app_id));
        let latest = metas
            .iter()
            .filter(|k| k.ends_with("/metadata"))
            .filter_map(|k| k.split("/chk-").nth(1)?.split('/').next()?.parse::<u64>().ok())
            .max();
        let Some(epoch) = latest else { return Ok(()) };
        self.stats.restore_count += 1;
        self.epoch = epoch;
        // State: replay full + incremental files up to `epoch` in order.
        self.state.clear();
        for e in 1..=epoch {
            let Some(blob) = self.store.get(&format!("{}/chk-{e}/state", self.config.app_id))
            else {
                continue;
            };
            let mut rest = blob.as_slice();
            while rest.len() >= 8 {
                let klen = u32::from_be_bytes(rest[..4].try_into().expect("len")) as usize;
                let k = Bytes::copy_from_slice(&rest[4..4 + klen]);
                rest = &rest[4 + klen..];
                let vlen = u32::from_be_bytes(rest[..4].try_into().expect("len")) as usize;
                let v = Bytes::copy_from_slice(&rest[4..4 + vlen]);
                rest = &rest[4 + vlen..];
                self.state.insert(k, v);
            }
        }
        // Offsets from the checkpoint metadata.
        if let Some(meta) = self.store.get(&format!("{}/chk-{epoch}/metadata", self.config.app_id))
        {
            for line in String::from_utf8_lossy(&meta).lines() {
                let mut parts = line.split('|');
                let (Some(topic), Some(part), Some(off)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    continue;
                };
                if let (Ok(part), Ok(off)) = (part.parse(), off.parse()) {
                    self.positions.insert(TopicPartition::new(topic, part), off);
                }
            }
        }
        // Drop any in-flight epoch.
        self.channels = (0..self.input_tps.len()).map(|_| Channel::new()).collect();
        self.aligner = Aligner::new(self.input_tps.len());
        self.pending_offsets.clear();
        self.dirty.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbroker::{Consumer, ConsumerConfig, TopicConfig};
    use simkit::Clock as _;
    use simkit::ManualClock;

    fn sum_reduce() -> ReduceFn {
        Arc::new(|cur, v| {
            let c = cur.map_or(0, |b| i64::from_be_bytes(b.as_ref().try_into().unwrap()));
            let x = i64::from_be_bytes(v.as_ref().try_into().unwrap());
            Bytes::copy_from_slice(&(c + x).to_be_bytes())
        })
    }

    fn setup(partitions: u32) -> (Cluster, ManualClock) {
        let clock = ManualClock::new();
        let cluster = Cluster::builder().brokers(1).replication(1).clock(clock.shared()).build();
        cluster.create_topic("in", TopicConfig::new(partitions)).unwrap();
        cluster.create_topic("out", TopicConfig::new(partitions)).unwrap();
        (cluster, clock)
    }

    fn produce(cluster: &Cluster, key: &str, val: i64, ts: i64) {
        let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
        p.send(
            "in",
            Some(Bytes::copy_from_slice(key.as_bytes())),
            Some(Bytes::copy_from_slice(&val.to_be_bytes())),
            ts,
        )
        .unwrap();
        p.flush().unwrap();
    }

    fn committed_outputs(cluster: &Cluster) -> Vec<(String, i64)> {
        let mut c = Consumer::new(cluster.clone(), "v", ConsumerConfig::default().read_committed());
        c.assign(cluster.partitions_of("out").unwrap()).unwrap();
        let mut out = Vec::new();
        loop {
            let batch = c.poll().unwrap();
            if batch.is_empty() {
                break;
            }
            for r in batch {
                out.push((
                    String::from_utf8(r.key.unwrap().to_vec()).unwrap(),
                    i64::from_be_bytes(r.value.unwrap().as_ref().try_into().unwrap()),
                ));
            }
        }
        out
    }

    fn config(interval: i64) -> CheckpointConfig {
        CheckpointConfig {
            cost: ObjectStoreCostModel { per_file_ms: 40, per_kib_ms: 0.1 },
            ..CheckpointConfig::new("flink-app", interval)
        }
    }

    #[test]
    fn outputs_invisible_until_checkpoint_commits() {
        let (cluster, clock) = setup(1);
        let mut app =
            CheckpointApp::new(cluster.clone(), config(100), "in", "out", sum_reduce()).unwrap();
        produce(&cluster, "k", 5, 0);
        app.step().unwrap();
        assert_eq!(app.stats().records_processed, 1);
        assert!(committed_outputs(&cluster).is_empty(), "txn uncommitted pre-checkpoint");
        // Cross the interval: barrier → snapshot → commit.
        clock.advance(100);
        app.step().unwrap();
        app.step().unwrap(); // drain the barrier
        assert_eq!(app.stats().checkpoints_completed, 1);
        assert_eq!(committed_outputs(&cluster), vec![("k".to_string(), 5)]);
    }

    #[test]
    fn checkpoint_pays_object_store_latency() {
        let (cluster, clock) = setup(1);
        let mut app =
            CheckpointApp::new(cluster.clone(), config(100), "in", "out", sum_reduce()).unwrap();
        produce(&cluster, "k", 1, 0);
        app.step().unwrap();
        clock.advance(100);
        let before = clock.now_ms();
        app.step().unwrap();
        app.step().unwrap();
        // state file + metadata file: 2 × 40ms base latency on the clock.
        assert!(clock.now_ms() - before >= 80, "uploads consumed simulated time");
        assert!(app.stats().checkpoint_latency_total_ms >= 80);
    }

    #[test]
    fn aggregates_across_epochs() {
        let (cluster, clock) = setup(1);
        let mut app =
            CheckpointApp::new(cluster.clone(), config(50), "in", "out", sum_reduce()).unwrap();
        for i in 1..=3 {
            produce(&cluster, "k", i, i);
            app.step().unwrap();
            clock.advance(50);
            app.step().unwrap();
            app.step().unwrap();
        }
        let outs = committed_outputs(&cluster);
        assert_eq!(outs.last(), Some(&("k".to_string(), 6)), "{outs:?}");
    }

    #[test]
    fn crash_recovers_from_last_checkpoint_exactly_once() {
        let (cluster, clock) = setup(1);
        let store;
        {
            let mut app =
                CheckpointApp::new(cluster.clone(), config(100), "in", "out", sum_reduce())
                    .unwrap();
            produce(&cluster, "k", 1, 0);
            app.step().unwrap();
            clock.advance(100);
            app.step().unwrap();
            app.step().unwrap(); // checkpoint 1 complete: k=1 committed
                                 // Epoch 2 work that will be LOST in the crash.
            produce(&cluster, "k", 10, 200);
            app.step().unwrap();
            store = app.object_store().clone();
            // Crash: app dropped, txn for epoch 2 dangling.
        }
        // New incarnation: init_transactions aborts the dangling txn; state
        // and offsets come back from checkpoint 1.
        let app2 = CheckpointApp::new(cluster.clone(), config(100), "in", "out", sum_reduce())
            .unwrap()
            .with_object_store(store)
            .unwrap();
        let mut app2 = app2;
        assert_eq!(app2.stats().restore_count, 1);
        // Replay re-processes value 10 exactly once.
        app2.step().unwrap();
        clock.advance(100);
        app2.step().unwrap();
        app2.step().unwrap();
        let outs = committed_outputs(&cluster);
        assert_eq!(outs, vec![("k".to_string(), 1), ("k".to_string(), 11)]);
    }

    #[test]
    fn incremental_checkpoints_upload_fewer_bytes() {
        let run = |incremental: bool| {
            let (cluster, clock) = setup(1);
            let mut cfg = config(50);
            cfg.incremental = incremental;
            let mut app =
                CheckpointApp::new(cluster.clone(), cfg, "in", "out", sum_reduce()).unwrap();
            // Build a large state, then touch one key repeatedly.
            for i in 0..100 {
                produce(&cluster, &format!("k{i}"), 1, i);
            }
            app.step().unwrap();
            clock.advance(50);
            app.step().unwrap();
            app.step().unwrap();
            for round in 0..5 {
                produce(&cluster, "k0", 1, 200 + round);
                app.step().unwrap();
                clock.advance(50);
                app.step().unwrap();
                app.step().unwrap();
            }
            app.object_store_stats().bytes_written
        };
        let full = run(false);
        let incr = run(true);
        assert!(
            incr < full / 2,
            "incremental ({incr} B) must upload far less than full ({full} B)"
        );
    }

    #[test]
    fn multi_partition_alignment() {
        let (cluster, clock) = setup(3);
        let mut app =
            CheckpointApp::new(cluster.clone(), config(100), "in", "out", sum_reduce()).unwrap();
        // Keys spread across partitions.
        for i in 0..9 {
            produce(&cluster, &format!("key-{i}"), 1, i);
        }
        app.step().unwrap();
        clock.advance(100);
        app.step().unwrap();
        app.step().unwrap();
        assert_eq!(app.stats().records_processed, 9);
        assert_eq!(app.stats().checkpoints_completed, 1);
        assert_eq!(committed_outputs(&cluster).len(), 9);
    }
}
