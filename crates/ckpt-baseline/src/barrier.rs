//! Aligned checkpoint barriers (Chandy–Lamport as used by Flink/IBM
//! Streams, §7).
//!
//! Sources inject a numbered barrier into every output channel; an operator
//! with multiple input channels must *align*: once a barrier arrives on one
//! channel, that channel is blocked (its records buffered) until the same
//! barrier arrives on every other channel, at which point the operator
//! snapshots its state and forwards the barrier. The paper's §2.1 point —
//! "checkpoint completion … is determined by the speed at which punctuations
//! flow through the application", i.e. backpressure on one channel delays
//! everyone — falls straight out of this structure.

use bytes::Bytes;
use std::collections::VecDeque;

/// An element flowing through an in-memory channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Element {
    Record { key: Bytes, value: Bytes, ts: i64 },
    Barrier(u64),
}

/// One FIFO channel between operators.
#[derive(Debug, Default)]
pub struct Channel {
    queue: VecDeque<Element>,
}

impl Channel {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, e: Element) {
        self.queue.push_back(e);
    }

    pub fn pop(&mut self) -> Option<Element> {
        self.queue.pop_front()
    }

    pub fn peek(&self) -> Option<&Element> {
        self.queue.front()
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Barrier aligner over N input channels.
///
/// Drives consumption: records are released in channel order except that a
/// channel whose current barrier has arrived is *blocked* until all
/// channels reach that barrier. When alignment completes, the aligner
/// reports the barrier id — the moment the operator must snapshot.
#[derive(Debug)]
pub struct Aligner {
    /// Barrier id each channel is currently blocked on (None = flowing).
    blocked_on: Vec<Option<u64>>,
}

/// What the aligner released.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Released {
    /// A data record from channel `from`.
    Record { from: usize, key: Bytes, value: Bytes, ts: i64 },
    /// All channels aligned on this barrier: snapshot now.
    AlignedBarrier(u64),
    /// Nothing available (all channels empty or blocked).
    Idle,
}

impl Aligner {
    pub fn new(num_channels: usize) -> Self {
        assert!(num_channels >= 1);
        Self { blocked_on: vec![None; num_channels] }
    }

    /// Pull the next element honouring alignment.
    pub fn poll(&mut self, channels: &mut [Channel]) -> Released {
        assert_eq!(channels.len(), self.blocked_on.len());
        // If every channel is blocked on the same barrier, alignment is
        // complete: unblock and emit the barrier.
        if self.blocked_on.iter().all(Option::is_some) {
            let barrier = self.blocked_on[0].expect("checked");
            debug_assert!(
                self.blocked_on.iter().all(|b| *b == Some(barrier)),
                "barriers must be injected in the same order on all channels"
            );
            for b in &mut self.blocked_on {
                *b = None;
            }
            return Released::AlignedBarrier(barrier);
        }
        // Otherwise release a record from any unblocked channel; blocking a
        // channel when its barrier surfaces.
        for (i, ch) in channels.iter_mut().enumerate() {
            if self.blocked_on[i].is_some() {
                continue;
            }
            match ch.peek() {
                Some(Element::Barrier(_)) => {
                    let Some(Element::Barrier(id)) = ch.pop() else { unreachable!() };
                    self.blocked_on[i] = Some(id);
                    // Re-check: maybe this completed alignment.
                    return self.poll(channels);
                }
                Some(Element::Record { .. }) => {
                    let Some(Element::Record { key, value, ts }) = ch.pop() else { unreachable!() };
                    return Released::Record { from: i, key, value, ts };
                }
                None => {}
            }
        }
        Released::Idle
    }

    /// Whether any channel is currently blocked waiting for alignment.
    pub fn is_aligning(&self) -> bool {
        self.blocked_on.iter().any(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(v: u8) -> Element {
        Element::Record { key: Bytes::from_static(b"k"), value: Bytes::from(vec![v]), ts: 0 }
    }

    fn released_value(r: &Released) -> Option<u8> {
        match r {
            Released::Record { value, .. } => Some(value[0]),
            _ => None,
        }
    }

    #[test]
    fn single_channel_passes_through() {
        let mut ch = vec![Channel::new()];
        ch[0].push(rec(1));
        ch[0].push(Element::Barrier(1));
        ch[0].push(rec(2));
        let mut a = Aligner::new(1);
        assert_eq!(released_value(&a.poll(&mut ch)), Some(1));
        assert_eq!(a.poll(&mut ch), Released::AlignedBarrier(1));
        assert_eq!(released_value(&a.poll(&mut ch)), Some(2));
        assert_eq!(a.poll(&mut ch), Released::Idle);
    }

    #[test]
    fn two_channels_align_blocking_the_faster_one() {
        let mut ch = vec![Channel::new(), Channel::new()];
        // Channel 0 is "fast": barrier arrives immediately, then more data.
        ch[0].push(Element::Barrier(1));
        ch[0].push(rec(10)); // belongs to the NEXT epoch
                             // Channel 1 still has pre-barrier data.
        ch[1].push(rec(1));
        ch[1].push(rec(2));
        ch[1].push(Element::Barrier(1));

        let mut a = Aligner::new(2);
        // Channel 0 blocks on its barrier; channel 1's records drain first.
        let r1 = a.poll(&mut ch);
        assert_eq!(released_value(&r1), Some(1));
        assert!(a.is_aligning());
        assert_eq!(released_value(&a.poll(&mut ch)), Some(2));
        // Now both reach the barrier: aligned.
        assert_eq!(a.poll(&mut ch), Released::AlignedBarrier(1));
        assert!(!a.is_aligning());
        // Post-barrier data from the fast channel only flows after.
        assert_eq!(released_value(&a.poll(&mut ch)), Some(10));
    }

    #[test]
    fn slow_channel_stalls_checkpoint() {
        // §2.1: backpressure on one channel delays the checkpoint.
        let mut ch = vec![Channel::new(), Channel::new()];
        ch[0].push(Element::Barrier(1));
        // Channel 1's barrier has not arrived at all.
        let mut a = Aligner::new(2);
        assert_eq!(a.poll(&mut ch), Released::Idle, "cannot align yet");
        assert!(a.is_aligning());
        // The barrier finally arrives.
        ch[1].push(Element::Barrier(1));
        assert_eq!(a.poll(&mut ch), Released::AlignedBarrier(1));
    }

    #[test]
    fn records_before_barrier_always_precede_snapshot() {
        let mut ch = vec![Channel::new(), Channel::new()];
        ch[0].push(rec(1));
        ch[0].push(Element::Barrier(1));
        ch[1].push(rec(2));
        ch[1].push(Element::Barrier(1));
        let mut a = Aligner::new(2);
        let mut seen = Vec::new();
        loop {
            match a.poll(&mut ch) {
                Released::Record { value, .. } => seen.push(value[0]),
                Released::AlignedBarrier(id) => {
                    assert_eq!(id, 1);
                    break;
                }
                Released::Idle => panic!("should align"),
            }
        }
        seen.sort();
        assert_eq!(seen, vec![1, 2], "all pre-barrier records processed first");
    }
}
