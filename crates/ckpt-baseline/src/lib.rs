//! # ckpt-baseline — aligned-checkpoint stream engine (the Flink stand-in)
//!
//! The paper's Figure 5.b compares Kafka Streams' transactional commits to
//! Apache Flink 1.12's checkpoint-based exactly-once (aligned Chandy–Lamport
//! barriers + incremental snapshots to S3 + a transactional Kafka sink).
//! This crate reproduces that baseline's *mechanism and cost structure*:
//!
//! * sources inject **barriers** every checkpoint interval; operators
//!   align on barriers across their input channels before snapshotting
//!   ([`barrier`]),
//! * state snapshots go to a simulated **object store** with a per-file
//!   base latency plus throughput cost ([`object_store`]) — the "per-file
//!   based" granularity the paper contrasts with Streams' per-record
//!   changelogs,
//! * the **transactional sink** buffers output in a Kafka transaction that
//!   can only commit once the checkpoint completes — so end-to-end latency
//!   includes the snapshot's object-store round-trips (§4.3),
//! * recovery rolls back to the last completed checkpoint and replays the
//!   source from the checkpointed offsets ([`engine`]).

pub mod barrier;
pub mod engine;
pub mod object_store;

pub use engine::{CheckpointApp, CheckpointConfig, CheckpointStats};
pub use object_store::{ObjectStore, ObjectStoreCostModel};
