//! Simulated object store (the S3 stand-in for checkpoint snapshots).
//!
//! The cost model is what matters for Figure 5.b: every PUT pays a fixed
//! per-file latency (object-store round trip) plus a size-proportional
//! transfer cost. "Flink's checkpointing is per-file based and hence would
//! take longer time when only a small number of keys are updated within the
//! interval" (§4.3) — the per-file base cost dominates small incremental
//! snapshots.

use parking_lot::Mutex;
use simkit::SharedClock;
use std::collections::HashMap;
use std::sync::Arc;

/// Latency/cost model for the simulated store.
#[derive(Debug, Clone, Copy)]
pub struct ObjectStoreCostModel {
    /// Fixed latency per PUT/GET (round trip + request overhead), ms.
    pub per_file_ms: i64,
    /// Additional latency per KiB transferred, ms.
    pub per_kib_ms: f64,
}

impl Default for ObjectStoreCostModel {
    fn default() -> Self {
        // Ballpark S3 PUT from the same region: tens of ms fixed cost.
        Self { per_file_ms: 40, per_kib_ms: 0.05 }
    }
}

impl ObjectStoreCostModel {
    /// Latency for transferring a file of `bytes`.
    pub fn latency_ms(&self, bytes: usize) -> i64 {
        self.per_file_ms + (bytes as f64 / 1024.0 * self.per_kib_ms) as i64
    }
}

/// Cumulative I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectStoreStats {
    pub puts: u64,
    pub gets: u64,
    pub bytes_written: u64,
    pub simulated_latency_ms: u64,
}

/// An in-memory blob store whose operations consume (simulated or real)
/// time through the shared clock.
#[derive(Clone)]
pub struct ObjectStore {
    clock: SharedClock,
    cost: ObjectStoreCostModel,
    inner: Arc<Mutex<Inner>>,
}

#[derive(Default)]
struct Inner {
    blobs: HashMap<String, Vec<u8>>,
    stats: ObjectStoreStats,
}

impl ObjectStore {
    pub fn new(clock: SharedClock, cost: ObjectStoreCostModel) -> Self {
        Self { clock, cost, inner: Arc::new(Mutex::new(Inner::default())) }
    }

    /// Store a blob, paying the model's latency.
    pub fn put(&self, key: &str, data: Vec<u8>) {
        let latency = self.cost.latency_ms(data.len());
        self.clock.sleep_ms(latency);
        let mut inner = self.inner.lock();
        inner.stats.puts += 1;
        inner.stats.bytes_written += data.len() as u64;
        inner.stats.simulated_latency_ms += latency as u64;
        inner.blobs.insert(key.to_string(), data);
    }

    /// Fetch a blob, paying the model's latency.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let data = self.inner.lock().blobs.get(key).cloned();
        if let Some(d) = &data {
            let latency = self.cost.latency_ms(d.len());
            self.clock.sleep_ms(latency);
            let mut inner = self.inner.lock();
            inner.stats.gets += 1;
            inner.stats.simulated_latency_ms += latency as u64;
        }
        data
    }

    /// Delete blobs with the given prefix (checkpoint retention).
    pub fn delete_prefix(&self, prefix: &str) {
        self.inner.lock().blobs.retain(|k, _| !k.starts_with(prefix));
    }

    /// List keys with a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut keys: Vec<String> =
            self.inner.lock().blobs.keys().filter(|k| k.starts_with(prefix)).cloned().collect();
        keys.sort();
        keys
    }

    pub fn stats(&self) -> ObjectStoreStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Clock as _;
    use simkit::ManualClock;

    fn store(clock: &ManualClock) -> ObjectStore {
        ObjectStore::new(clock.shared(), ObjectStoreCostModel { per_file_ms: 10, per_kib_ms: 1.0 })
    }

    #[test]
    fn put_get_round_trip() {
        let clock = ManualClock::new();
        let s = store(&clock);
        s.put("ckpt/1/state", vec![1, 2, 3]);
        assert_eq!(s.get("ckpt/1/state"), Some(vec![1, 2, 3]));
        assert_eq!(s.get("missing"), None);
    }

    #[test]
    fn put_pays_per_file_latency() {
        let clock = ManualClock::new();
        let s = store(&clock);
        s.put("a", vec![0; 10]); // tiny file: latency ≈ base
        assert_eq!(clock.now_ms(), 10);
        s.put("b", vec![0; 2048]); // 2 KiB: base + 2ms
        assert_eq!(clock.now_ms(), 22);
    }

    #[test]
    fn small_files_dominated_by_base_cost() {
        // The Figure 5.b argument: N tiny incremental files cost ≈ N × base.
        let clock = ManualClock::new();
        let s = store(&clock);
        for i in 0..5 {
            s.put(&format!("ckpt/{i}"), vec![0; 16]);
        }
        assert_eq!(clock.now_ms(), 50, "5 files × 10ms base");
    }

    #[test]
    fn stats_accumulate() {
        let clock = ManualClock::new();
        let s = store(&clock);
        s.put("a", vec![0; 100]);
        s.get("a");
        let st = s.stats();
        assert_eq!(st.puts, 1);
        assert_eq!(st.gets, 1);
        assert_eq!(st.bytes_written, 100);
        assert!(st.simulated_latency_ms >= 20);
    }

    #[test]
    fn delete_prefix_and_list() {
        let clock = ManualClock::new();
        let s = store(&clock);
        s.put("ckpt/1/a", vec![1]);
        s.put("ckpt/1/b", vec![2]);
        s.put("ckpt/2/a", vec![3]);
        assert_eq!(s.list("ckpt/1/").len(), 2);
        s.delete_prefix("ckpt/1/");
        assert_eq!(s.list("ckpt/1/").len(), 0);
        assert_eq!(s.list("ckpt/").len(), 1);
    }
}
