//! Simtest scenarios for the write-back record caches: caching must be a
//! pure performance transform. Every consistency/completeness oracle holds
//! at any cache size under the same fault schedules, replay stays
//! byte-identical per seed, and a cached run demonstrably absorbs
//! repeated-key traffic.

use simkit::simtest::{run, Profile, SimConfig};

/// The §5 oracles (exactly-once, completeness, suppression finality) hold
/// with caching off, with a pathological capacity of one entry (constant
/// eviction), and with a capacity that holds the whole working set.
#[test]
fn oracles_hold_across_cache_sizes() {
    for seed in [3, 19, 42] {
        for cache in [0usize, 1, 64] {
            run(&SimConfig::new(seed).with_steps(150).with_cache(cache)).assert_passed();
        }
    }
}

/// Cache flushing is deterministic (sorted drain order), so a cached run
/// replays byte-identically — the property the whole simtest harness
/// depends on for seed repro.
#[test]
fn cached_replay_is_byte_identical() {
    let cfg = SimConfig::new(23).with_steps(120).with_cache(64).with_obs_profile();
    let first = format!("{}", run(&cfg));
    let second = format!("{}", run(&cfg));
    assert_eq!(first, second, "cached runs must replay byte-identically per seed");
}

/// The repro line round-trips the cache knob, so a failing cached seed can
/// be replayed with the same configuration.
#[test]
fn repro_line_carries_the_cache_knob() {
    let report = run(&SimConfig::new(5).with_steps(60).with_cache(64));
    report.assert_passed();
    assert!(report.repro().contains("--cache 64"), "repro: {}", report.repro());
    let uncached = run(&SimConfig::new(5).with_steps(60));
    assert!(!uncached.repro().contains("--cache"), "repro: {}", uncached.repro());
}

/// On the same seed (same workload, same fault schedule) a cached run
/// coalesces same-key revisions inside commit intervals: the cache observes
/// hits, and the committed output stream carries no more records than the
/// uncached run's.
#[test]
fn cache_absorbs_repeated_key_traffic() {
    let base = SimConfig::new(7).with_steps(200).with_profile(Profile::Count);
    let uncached = run(&base.clone().with_obs_profile());
    uncached.assert_passed();
    let cached = run(&base.with_cache(1024).with_obs_profile());
    cached.assert_passed();

    assert!(
        cached.output_records <= uncached.output_records,
        "caching may only reduce committed output: cached={} uncached={}",
        cached.output_records,
        uncached.output_records
    );
    if kobs::ENABLED {
        let obs = cached.obs.as_ref().expect("profiled run attaches a snapshot");
        let hits = obs.counter("kstreams.cache.hits").unwrap_or(0);
        assert!(hits > 0, "expected same-key coalescing on seed 7:\n{cached}");
        assert!(
            obs.counter("kstreams.cache.flush_entries").unwrap_or(0) > 0,
            "commit-time flushes must drain the dirty set:\n{cached}"
        );
        let un_obs = uncached.obs.as_ref().expect("profiled run attaches a snapshot");
        assert_eq!(
            un_obs.counter("kstreams.cache.hits").unwrap_or(0),
            0,
            "cache-off runs must not touch the cache:\n{uncached}"
        );
    }
}
