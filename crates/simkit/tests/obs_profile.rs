//! Integration tests for the `--profile` observability surface of simtest:
//! the attached metrics snapshot, the trailing trace window, and the JSON
//! export the CI schema gate consumes.

use kobs::json::Value;
use simkit::simtest::{run, SimConfig};

#[test]
fn profiled_report_carries_metrics_and_trace() {
    let report = run(&SimConfig::new(7).with_steps(100).with_obs_profile());
    report.assert_passed();
    let obs = report.obs.as_ref().expect("profiled run attaches a snapshot");
    if kobs::ENABLED {
        // The acceptance surface: txn per-phase latency percentiles, the
        // commit-cycle histogram, and the LSO-lag gauge.
        let markers = obs.hist("kbroker.txn.phase.markers_ms").expect("markers phase");
        assert!(markers.count > 0, "no marker phase observed:\n{report}");
        assert!(obs.hist("kstreams.commit_cycle_ms").is_some(), "commit cycle:\n{report}");
        assert!(obs.gauge("kbroker.lso_lag").is_some(), "LSO lag gauge:\n{report}");
        assert!(obs.gauge("kbroker.lso_lag_peak").is_some());
        assert!(obs.counter("kstreams.restore.records_replayed").is_some());

        assert!(!report.trace.is_empty(), "profiled run attaches a trace tail");
        assert!(report.trace.len() <= 32, "trace tail is bounded");
        assert!(
            report.trace.windows(2).all(|w| w[0].seq < w[1].seq),
            "trace tail is in emission order"
        );

        let text = report.to_string();
        assert!(text.contains("  metrics:"), "report renders the snapshot:\n{text}");
        assert!(text.contains("  trace (last "), "report renders the trace tail:\n{text}");
    } else {
        assert!(obs.is_empty(), "kobs-off builds attach an empty snapshot");
        assert!(report.trace.is_empty());
    }
}

#[test]
fn report_json_round_trips_through_the_kobs_parser() {
    let report = run(&SimConfig::new(7).with_steps(100).with_obs_profile());
    report.assert_passed();
    let doc = kobs::json::parse(&report.to_json().to_string()).expect("report JSON parses");
    assert_eq!(doc.get("seed").and_then(Value::as_f64), Some(7.0));
    assert_eq!(doc.get("passed"), Some(&Value::Bool(true)));
    let metrics = doc.get("metrics").expect("profiled JSON embeds the snapshot");
    assert!(metrics.get("counters").is_some());
    assert!(metrics.get("histograms").is_some());
}

#[test]
fn unprofiled_passing_run_has_no_obs_sections() {
    let report = run(&SimConfig::new(7).with_steps(50));
    report.assert_passed();
    assert!(report.obs.is_none(), "snapshot only rides along when requested");
    assert!(report.trace.is_empty(), "trace tail only rides along on request or failure");
    let text = report.to_string();
    assert!(!text.contains("  metrics:"));
    assert!(!text.contains("  trace (last "));
}

#[test]
fn profiled_replay_is_byte_identical() {
    let cfg = SimConfig::new(11).with_steps(120).with_obs_profile();
    let first = format!("{}", run(&cfg));
    let second = format!("{}", run(&cfg));
    assert_eq!(first, second, "metrics and trace must replay byte-identically per seed");
}
