//! Simtest scenarios for the durable disk backend (`--storage disk`):
//! durability must be a pure *backend* transform. The §4/§5 oracles hold
//! under the same fault schedules plus the durable-crash class, replay is
//! byte-identical per seed (all I/O costs are virtual), and the disk metric
//! family actually fires.

use simkit::simtest::{run, SimConfig};

/// Exactly-once, completeness, and the protocol invariant sink all hold
/// with brokers on segment files, spilled app state, and honest
/// kill-and-recover-from-disk events in the schedule.
#[test]
fn oracles_hold_on_disk_storage() {
    for seed in [3, 19, 42] {
        run(&SimConfig::new(seed).with_steps(150).with_disk_storage()).assert_passed();
    }
}

/// Disk I/O is modeled with virtual costs and name-ordered directory
/// iteration, so a disk run replays byte-identically — the acceptance bar
/// for `--storage disk --seed S` run twice.
#[test]
fn disk_replay_is_byte_identical() {
    let cfg = SimConfig::new(23).with_steps(120).with_disk_storage().with_obs_profile();
    let first = format!("{}", run(&cfg));
    let second = format!("{}", run(&cfg));
    assert_eq!(first, second, "disk runs must replay byte-identically per seed");
}

/// The repro line round-trips the storage knob, and memory-mode repro lines
/// stay exactly as before (no spurious flag).
#[test]
fn repro_line_carries_the_storage_knob() {
    let report = run(&SimConfig::new(5).with_steps(60).with_disk_storage());
    report.assert_passed();
    assert!(report.repro().contains("--storage disk"), "repro: {}", report.repro());
    let memory = run(&SimConfig::new(5).with_steps(60));
    assert!(!memory.repro().contains("--storage"), "repro: {}", memory.repro());
}

/// A disk run demonstrably goes through the disk: the `klog.disk.*`
/// metric family fires, and seed 3's schedule includes durable
/// crash-restore cycles that rebuilt state from segment files.
#[test]
fn disk_runs_exercise_the_disk() {
    let report = run(&SimConfig::new(3).with_steps(400).with_disk_storage().with_obs_profile());
    report.assert_passed();
    assert!(report.events.durable_crashes > 0, "seed 3 schedules durable crashes:\n{report}");
    if kobs::ENABLED {
        let obs = report.obs.as_ref().expect("profiled run attaches a snapshot");
        assert!(
            obs.counter("klog.disk.appends").unwrap_or(0) > 0,
            "disk appends must be mirrored:\n{report}"
        );
        assert!(
            obs.counter("klog.disk.recoveries").unwrap_or(0) > 0,
            "durable crashes must recover from segment files:\n{report}"
        );
    }
    // Memory-mode runs of the same seed never touch the disk family.
    let memory = run(&SimConfig::new(3).with_steps(400).with_obs_profile());
    memory.assert_passed();
    if kobs::ENABLED {
        let obs = memory.obs.as_ref().expect("profiled run attaches a snapshot");
        assert_eq!(
            obs.counter("klog.disk.appends").unwrap_or(0),
            0,
            "memory runs must not touch the disk:\n{memory}"
        );
    }
}
