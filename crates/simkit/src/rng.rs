//! Deterministic random number generation.
//!
//! A thin, explicitly seeded wrapper so that every simulated component that
//! needs randomness derives it from one recorded seed, making failure
//! scenarios exactly reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG seeded explicitly; never seeded from the environment.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
    seed: u64,
}

impl DetRng {
    pub fn new(seed: u64) -> Self {
        Self { inner: SmallRng::seed_from_u64(seed), seed }
    }

    /// The seed this RNG was created with (for logging / reproduction).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child RNG, e.g. one per simulated component.
    /// Children with different `stream` ids produce independent sequences.
    pub fn derive(&self, stream: u64) -> DetRng {
        // Mix the streams with splitmix64-style constants so nearby stream
        // ids do not yield correlated child seeds.
        let mixed = (self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        DetRng::new(mixed)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.inner.gen::<f64>() < p
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)` for i64.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        self.inner.gen_range(lo..hi)
    }

    /// Pick a uniformly random element index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty collection");
        self.inner.gen_range(0..len)
    }

    /// Raw u64.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 1 and 2 should not track each other");
    }

    #[test]
    fn derive_is_deterministic_and_independent() {
        let parent = DetRng::new(7);
        let mut c1 = parent.derive(0);
        let mut c1b = parent.derive(0);
        let mut c2 = parent.derive(1);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        // Not a strict guarantee, but astronomically unlikely to collide.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn range_bounds() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
