//! # simkit — deterministic simulation kit
//!
//! Shared infrastructure for the Kafka-Streams reproduction: virtual and
//! wall clocks, seeded deterministic RNG, fault-injection plans, and
//! latency/throughput measurement — re-exported from the dependency-free
//! `simprims` crate, so the broker and streams layers (which depend on
//! `simprims` under the `simkit` name) and this crate hand out the *same*
//! types.
//!
//! On top of the primitives, [`simtest`] adds a FoundationDB-style
//! deterministic simulation engine: a single `u64` seed generates a
//! workload, a fault schedule, and an interleaved step schedule driving
//! real [`kstreams::KafkaStreamsApp`] instances on virtual time, then
//! checks exactly-once and completeness oracles against a fault-free
//! reference model. Any failing seed replays with
//! `cargo run -p simkit --bin simtest -- --seed N`.
//!
//! Everything in the workspace that needs "time" takes a [`Clock`] so tests
//! can run on a [`ManualClock`] (fully deterministic, instantaneous) while
//! benchmark harnesses run on the [`WallClock`].

pub use simprims::{clock, fault, hist, rng};

pub use simprims::{
    Clock, DetRng, FaultDecision, FaultPlan, FaultPoint, LatencyHistogram, ManualClock,
    SharedClock, ThroughputMeter, WallClock,
};

pub mod simtest;
