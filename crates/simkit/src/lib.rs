//! # simkit — deterministic simulation kit
//!
//! Shared infrastructure for the Kafka-Streams reproduction: virtual and
//! wall clocks, seeded deterministic RNG, fault-injection plans, and
//! latency/throughput measurement.
//!
//! Everything in the workspace that needs "time" takes a [`Clock`] so tests
//! can run on a [`ManualClock`] (fully deterministic, instantaneous) while
//! benchmark harnesses run on the [`WallClock`].

pub mod clock;
pub mod fault;
pub mod hist;
pub mod rng;

pub use clock::{Clock, ManualClock, SharedClock, WallClock};
pub use fault::{FaultDecision, FaultPlan, FaultPoint};
pub use hist::{LatencyHistogram, ThroughputMeter};
pub use rng::DetRng;
