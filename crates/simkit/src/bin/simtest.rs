//! Seed-replay CLI for the deterministic simulation harness.
//!
//! ```text
//! cargo run -p simkit --bin simtest -- --seed 42
//! cargo run -p simkit --bin simtest -- --seed 42 --steps 800 --profile windowed
//! cargo run -p simkit --bin simtest -- --seed 42 --profile           # obs snapshot
//! cargo run -p simkit --bin simtest -- --seed 42 --profile --json
//! cargo run -p simkit --bin simtest -- --sweep 0..50
//! cargo run -p simkit --bin simtest -- --seed 42 --workers 4        # virtual scheduler
//! cargo run -p simkit --bin simtest -- --seed 42 --storage disk     # durable backend
//! cargo run -p simkit --bin simtest -- --seed 42 --churn            # rebalance churn
//! cargo run -p simkit --bin simtest -- --seed 0 --script "TxnRpcAckLost@2;KillBroker@5"
//! cargo run -p simkit --bin simtest -- --seed 42 --trace-out trace.json  # Perfetto
//! cargo run -p simkit --bin simtest -- --seed 42 --inject-failure       # flight dump
//! ```
//!
//! `--profile` with a topology argument forces that topology (historic
//! meaning, kept for replay commands); `--profile` with no argument attaches
//! the kobs metrics snapshot and trace tail to the report. Combine both as
//! `--profile count --profile`.
//!
//! Exit code 0 iff every requested run passed all oracles.

use simkit::simtest::{run, Profile, Script, SimConfig};
use std::process::ExitCode;

struct Args {
    seeds: Vec<u64>,
    steps: Option<u64>,
    profile: Option<Profile>,
    cache: Option<usize>,
    workers: Option<usize>,
    script: Option<Script>,
    obs: bool,
    json: bool,
    trace_out: Option<String>,
    inject_failure: bool,
    disk_storage: bool,
    churn: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: simtest (--seed N | --sweep A..B) [--steps M] [--cache N] [--workers K] [--storage memory|disk] [--churn] [--profile [count|windowed|suppressed]] [--script TOKENS] [--trace-out PATH] [--inject-failure] [--json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: Vec::new(),
        steps: None,
        profile: None,
        cache: None,
        workers: None,
        script: None,
        obs: false,
        json: false,
        trace_out: None,
        inject_failure: false,
        disk_storage: false,
        churn: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = &argv[i];
        i += 1;
        match flag.as_str() {
            "--json" => args.json = true,
            "--inject-failure" => args.inject_failure = true,
            "--churn" => args.churn = true,
            "--trace-out" => {
                let Some(value) = argv.get(i) else { usage() };
                i += 1;
                args.trace_out = Some(value.clone());
            }
            "--profile" => match argv.get(i) {
                // `--profile <topology>` keeps its historic meaning (force
                // the topology); a bare `--profile` (end of args, or next
                // token is another flag) turns on observability profiling.
                Some(v) if !v.starts_with("--") => match Profile::parse(v) {
                    Some(p) => {
                        args.profile = Some(p);
                        i += 1;
                    }
                    None => usage(),
                },
                _ => args.obs = true,
            },
            "--script" => {
                let Some(value) = argv.get(i) else { usage() };
                i += 1;
                match Script::parse(value) {
                    Ok(script) => args.script = Some(script),
                    Err(e) => {
                        eprintln!("simtest: {e}");
                        usage();
                    }
                }
            }
            "--cache" => {
                let Some(value) = argv.get(i) else { usage() };
                i += 1;
                match value.parse() {
                    Ok(n) => args.cache = Some(n),
                    Err(_) => usage(),
                }
            }
            "--storage" => {
                let Some(value) = argv.get(i) else { usage() };
                i += 1;
                match value.as_str() {
                    "memory" => args.disk_storage = false,
                    "disk" => args.disk_storage = true,
                    _ => usage(),
                }
            }
            "--workers" => {
                let Some(value) = argv.get(i) else { usage() };
                i += 1;
                match value.parse() {
                    Ok(n) if n > 0 => args.workers = Some(n),
                    _ => usage(),
                }
            }
            "--seed" | "--sweep" | "--steps" => {
                let Some(value) = argv.get(i) else { usage() };
                i += 1;
                match flag.as_str() {
                    "--seed" => match value.parse() {
                        Ok(seed) => args.seeds.push(seed),
                        Err(_) => usage(),
                    },
                    "--sweep" => {
                        let Some((lo, hi)) = value.split_once("..") else { usage() };
                        match (lo.parse::<u64>(), hi.parse::<u64>()) {
                            (Ok(lo), Ok(hi)) if lo < hi => args.seeds.extend(lo..hi),
                            _ => usage(),
                        }
                    }
                    _ => match value.parse() {
                        Ok(steps) => args.steps = Some(steps),
                        Err(_) => usage(),
                    },
                }
            }
            _ => usage(),
        }
    }
    if args.seeds.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failed = 0u64;
    let total = args.seeds.len();
    for seed in &args.seeds {
        let mut cfg = SimConfig::new(*seed);
        if let Some(steps) = args.steps {
            cfg = cfg.with_steps(steps);
        }
        if let Some(profile) = args.profile {
            cfg = cfg.with_profile(profile);
        }
        if let Some(cache) = args.cache {
            cfg = cfg.with_cache(cache);
        }
        if let Some(workers) = args.workers {
            cfg = cfg.with_workers(workers);
        }
        if let Some(script) = &args.script {
            cfg = cfg.with_script(script.clone());
        }
        if args.obs {
            cfg = cfg.with_obs_profile();
        }
        if args.inject_failure {
            cfg = cfg.with_injected_failure();
        }
        if args.disk_storage {
            cfg = cfg.with_disk_storage();
        }
        if args.churn {
            cfg = cfg.with_churn();
        }
        let report = run(&cfg);
        if args.json {
            println!("{}", report.to_json());
        } else {
            println!("{report}");
        }
        if let Some(path) = &args.trace_out {
            // The ktrace span store persists after the run (it is reset at
            // the *start* of the next one), so this exports exactly the
            // finished spans of the run above. Load the file in Perfetto
            // (https://ui.perfetto.dev) or chrome://tracing. With
            // `--sweep`, the last seed's trace wins.
            let json = kobs::trace_export::chrome_json_all();
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("simtest: cannot write trace to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if !report.passed() {
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!("simtest: {failed}/{total} seeds FAILED");
        ExitCode::FAILURE
    } else {
        eprintln!("simtest: {total}/{total} seeds passed");
        ExitCode::SUCCESS
    }
}
