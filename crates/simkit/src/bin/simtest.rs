//! Seed-replay CLI for the deterministic simulation harness.
//!
//! ```text
//! cargo run -p simkit --bin simtest -- --seed 42
//! cargo run -p simkit --bin simtest -- --seed 42 --steps 800 --profile windowed
//! cargo run -p simkit --bin simtest -- --sweep 0..50
//! ```
//!
//! Exit code 0 iff every requested run passed all oracles.

use simkit::simtest::{run, Profile, SimConfig};
use std::process::ExitCode;

struct Args {
    seeds: Vec<u64>,
    steps: Option<u64>,
    profile: Option<Profile>,
}

fn usage() -> ! {
    eprintln!(
        "usage: simtest (--seed N | --sweep A..B) [--steps M] [--profile count|windowed|suppressed]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args { seeds: Vec::new(), steps: None, profile: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--seed" => match value.parse() {
                Ok(seed) => args.seeds.push(seed),
                Err(_) => usage(),
            },
            "--sweep" => {
                let Some((lo, hi)) = value.split_once("..") else { usage() };
                match (lo.parse::<u64>(), hi.parse::<u64>()) {
                    (Ok(lo), Ok(hi)) if lo < hi => args.seeds.extend(lo..hi),
                    _ => usage(),
                }
            }
            "--steps" => match value.parse() {
                Ok(steps) => args.steps = Some(steps),
                Err(_) => usage(),
            },
            "--profile" => match Profile::parse(&value) {
                Some(p) => args.profile = Some(p),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if args.seeds.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failed = 0u64;
    let total = args.seeds.len();
    for seed in &args.seeds {
        let mut cfg = SimConfig::new(*seed);
        if let Some(steps) = args.steps {
            cfg = cfg.with_steps(steps);
        }
        if let Some(profile) = args.profile {
            cfg = cfg.with_profile(profile);
        }
        let report = run(&cfg);
        println!("{report}");
        if !report.passed() {
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!("simtest: {failed}/{total} seeds FAILED");
        ExitCode::FAILURE
    } else {
        eprintln!("simtest: {total}/{total} seeds passed");
        ExitCode::SUCCESS
    }
}
