//! The scenario engine: seed → workload + fault schedule + interleaved
//! step schedule → drain → oracles.

use crate::simtest::report::{EventCounts, SimReport};
use crate::simtest::script::{Script, ScriptEvent};
use crate::simtest::workload::{Profile, Workload, GRACE_MS, MAX_JITTER_MS, WINDOW_MS};
use crate::{DetRng, FaultPlan, FaultPoint, ManualClock};
use kbroker::group::SESSION_TIMEOUT_MS;
use kbroker::{
    Cluster, Consumer, ConsumerConfig, ConsumerRecord, DiskConfig, Producer, ProducerConfig,
    StorageMode, TopicConfig, TopicPartition,
};
use kstreams::{KSerde, KafkaStreamsApp, StreamsConfig, Windowed};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

/// Application id of the simulated app (also its consumer group).
const APP_ID: &str = "sim";

/// Key used for the per-partition window-closing records fed at drain
/// time; excluded from every oracle.
const SENTINEL_KEY: &str = "~sentinel";

/// Upper bound on drain iterations before declaring non-convergence.
const MAX_DRAIN_ITERS: u64 = 5_000;

/// Cap on reported oracle failures (the report stays readable; the count
/// of suppressed entries is still printed).
const MAX_FAILURES: usize = 20;

/// Trailing trace-event window attached to profiled or failing reports.
const TRACE_TAIL: usize = 32;

/// Flight-recorder span trees rendered into a failing report (the ring
/// retains [`kobs::ktrace::FLIGHT_RECORDER_TREES`]; dumping them all would
/// drown the repro line).
const FLIGHT_DUMP_TREES: usize = 2;

/// Broker-side rebalance debounce window used in `--churn` runs
/// (virtual-clock ms): churn bursts coalesce into one generation bump.
const CHURN_DEBOUNCE_MS: i64 = 25;

/// Cap on instances the churn fleet-resize class may grow beyond the
/// workload's starting fleet.
const CHURN_MAX_EXTRA_INSTANCES: usize = 3;

/// The `klog::checks` violation sink is process-global, so concurrent runs
/// (e.g. `cargo test` threads) would steal each other's violations.
static RUN_LOCK: Mutex<()> = Mutex::new(());

/// Configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub seed: u64,
    /// Scheduled actions in the chaos phase (before the healing drain).
    pub steps: u64,
    /// Force a topology profile instead of deriving it from the seed.
    pub profile: Option<Profile>,
    /// Attach a kobs metrics snapshot (and trace tail) to the report.
    pub obs_profile: bool,
    /// Record-cache capacity handed to every app instance
    /// (`StreamsConfig::cache_max_entries`); 0 disables caching.
    pub cache_max_entries: usize,
    /// Scheduler worker count per app instance. 1 keeps the serial task
    /// loop; >1 runs the work-stealing scheduler in *virtual* mode — the
    /// worker interleaving is derived from the run seed and serialized on
    /// the calling thread, so the run stays byte-identical per
    /// `(seed, workers)` pair.
    pub workers: usize,
    /// Scripted fault schedule (the kcheck counterexample bridge). When
    /// set, it replaces the seed-derived probabilistic fault plan.
    pub script: Option<Script>,
    /// Record a synthetic oracle failure after the drain so the
    /// flight-recorder dump path can be exercised on a healthy run.
    pub inject_failure: bool,
    /// Run brokers on the durable disk backend (`--storage disk`) and app
    /// instances with a state directory (post-commit spills). Segment files
    /// and spills live in a per-`(pid, seed)` temp directory that is wiped
    /// before and after the run; all I/O costs are *virtual* (charged to
    /// kobs histograms, never slept), so a disk run is still byte-identical
    /// per seed. Also unlocks the durable-crash fault class: kill+restore a
    /// broker in one scheduled action (recovery from its segment files), or
    /// crash+respawn an instance in one action (warm-start from spills).
    pub disk_storage: bool,
    /// Rebalance-churn fault classes (`--churn`): rolling restarts
    /// (graceful close + immediate rejoin under the same instance id) and
    /// fleet resizing (instances added to / removed from the group under
    /// load). Apps additionally run with a broker-side rebalance debounce
    /// window, so back-to-back churn coalesces. Off by default so the
    /// no-churn schedule stream stays byte-identical with earlier seeds;
    /// oracles are unchanged — exactly-once and completeness must hold
    /// through every rebalance.
    pub churn: bool,
}

impl SimConfig {
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            steps: 300,
            profile: None,
            obs_profile: false,
            cache_max_entries: 0,
            workers: 1,
            script: None,
            inject_failure: false,
            disk_storage: false,
            churn: false,
        }
    }

    pub fn with_steps(mut self, steps: u64) -> Self {
        self.steps = steps;
        self
    }

    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.profile = Some(profile);
        self
    }

    pub fn with_obs_profile(mut self) -> Self {
        self.obs_profile = true;
        self
    }

    pub fn with_cache(mut self, cache_max_entries: usize) -> Self {
        self.cache_max_entries = cache_max_entries;
        self
    }

    pub fn with_script(mut self, script: Script) -> Self {
        self.script = Some(script);
        self
    }

    /// Run every app instance with `workers` virtual scheduler workers
    /// (deterministically interleaved from the run seed).
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "worker count must be at least 1");
        self.workers = workers;
        self
    }

    /// Inject a synthetic oracle failure after the drain. The run itself is
    /// untouched — this only exercises the failure reporting path, i.e. the
    /// flight-recorder span-tree dump next to the repro line.
    pub fn with_injected_failure(mut self) -> Self {
        self.inject_failure = true;
        self
    }

    /// Run on the durable disk backend (`--storage disk`): broker segment
    /// files, app state-store spills, and the durable-crash fault class.
    pub fn with_disk_storage(mut self) -> Self {
        self.disk_storage = true;
        self
    }

    /// Enable the rebalance-churn fault classes (`--churn`): rolling
    /// restarts and fleet resizing under load, with a broker-side rebalance
    /// debounce window on the group.
    pub fn with_churn(mut self) -> Self {
        self.churn = true;
        self
    }

    /// Temp directory holding this run's segment files and spills.
    fn disk_root(&self) -> PathBuf {
        std::env::temp_dir().join(format!("simtest-disk-{}-{}", std::process::id(), self.seed))
    }
}

/// One app slot: the instance index is the identity (`i{idx}`), the app is
/// present while the instance is "alive".
type Slot = Option<KafkaStreamsApp>;

struct Engine {
    cfg: SimConfig,
    workload: Workload,
    clock: ManualClock,
    cluster: Cluster,
    plan: FaultPlan,
    slots: Vec<Slot>,
    feeder: Producer,
    /// Monotone base for generated timestamps (jitter backdates from it).
    base_ts: i64,
    max_ts: i64,
    records_fed: u64,
    feed_errors: u64,
    events: EventCounts,
    step_errors: Vec<String>,
    failures: Vec<String>,
    /// App state directory (spills); `Some` iff running on disk storage.
    state_dir: Option<PathBuf>,
}

/// Run one simulation to completion and report the oracle outcome.
pub fn run(cfg: &SimConfig) -> SimReport {
    let _serial = RUN_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // Drain stale violations from earlier (non-simtest) activity in this
    // process so the invariant oracle only sees this run.
    let _ = klog::checks::take_violations();
    // Same story for the kobs registry and trace ring: both are
    // process-global, so start every run from a clean slate to keep the
    // attached snapshot deterministic per seed.
    kobs::reset();

    let root = DetRng::new(cfg.seed);
    let workload = Workload::generate(&mut root.derive(1), cfg.profile);
    // A script pins the fault schedule to exactly the counterexample's
    // injections; the seed still drives the workload and step schedule.
    let plan = match &cfg.script {
        Some(script) => script.fault_plan(),
        None => build_fault_plan(&mut root.derive(2), cfg.seed),
    };
    let mut schedule = root.derive(3);

    // Disk mode: segment files and spills live under a per-(pid, seed)
    // temp root, wiped before the run (a stale tree from a killed earlier
    // run must not leak state in) and after it (below).
    let disk_root = cfg.disk_storage.then(|| cfg.disk_root());
    if let Some(root) = &disk_root {
        let _ = std::fs::remove_dir_all(root);
    }
    let storage = match &disk_root {
        Some(root) => StorageMode::Disk(DiskConfig::at(root.join("broker"))),
        None => StorageMode::Memory,
    };

    let clock = ManualClock::new();
    let cluster = Cluster::builder()
        .brokers(workload.brokers)
        .replication(workload.brokers)
        .clock(clock.shared())
        .storage(storage)
        .faults(plan.clone())
        // Charge a small per-marker RPC cost so the txn-phase and
        // commit-cycle histograms in `--profile` reports have the Figure 5
        // shape (marker fan-out dominates, scaling with partition count)
        // instead of collapsing to zero.
        .txn_marker_cost_ms(2.0)
        .build();
    cluster.create_topic("events", TopicConfig::new(workload.partitions)).expect("fresh topic");
    cluster.create_topic("out", TopicConfig::new(workload.partitions)).expect("fresh topic");

    let feeder = Producer::new(cluster.clone(), ProducerConfig::default().with_batch_size(1));
    let mut engine = Engine {
        cfg: cfg.clone(),
        workload,
        clock,
        cluster,
        plan,
        slots: Vec::new(),
        feeder,
        base_ts: 0,
        max_ts: 0,
        records_fed: 0,
        feed_errors: 0,
        events: EventCounts::default(),
        step_errors: Vec::new(),
        failures: Vec::new(),
        state_dir: disk_root.as_ref().map(|root| root.join("state")),
    };
    for idx in 0..engine.workload.instances {
        let slot = engine.spawn_instance(idx);
        engine.slots.push(slot);
    }
    for step in 1..=cfg.steps {
        engine.scripted_events(step);
        engine.scheduled_action(&mut schedule);
    }
    let report = engine.drain_and_check();
    if let Some(root) = &disk_root {
        let _ = std::fs::remove_dir_all(root);
    }
    report
}

fn build_fault_plan(rng: &mut DetRng, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::seeded(seed ^ 0x5151_5151);
    for point in FaultPoint::ALL {
        // Per-point: usually faulty, with loss probabilities small enough
        // that client retry budgets (10 retries) are effectively never
        // exhausted, but large enough that every point fires across a
        // modest seed sweep.
        if rng.chance(0.8) {
            plan = plan.with_ack_loss(point, rng.unit() * 0.08);
        }
        if rng.chance(0.8) {
            plan = plan.with_request_loss(point, rng.unit() * 0.08);
        }
    }
    plan
}

impl Engine {
    fn app_config(&self) -> StreamsConfig {
        let mut cfg = StreamsConfig::new(APP_ID)
            .exactly_once()
            .with_commit_interval_ms(10)
            .with_max_poll_records(64)
            .with_cache_max_entries(self.cfg.cache_max_entries);
        if let Some(dir) = &self.state_dir {
            cfg = cfg.with_state_dir(dir.clone());
        }
        if self.cfg.churn {
            // Churn mode exercises the broker-side debounce window too:
            // back-to-back joins/transfer-requests coalesce into one
            // generation bump (virtual clock, so still deterministic).
            cfg = cfg.with_rebalance_debounce_ms(CHURN_DEBOUNCE_MS);
        }
        if self.cfg.workers > 1 {
            // Virtual mode: the scheduler's steal decisions come from the
            // run seed, so a multi-worker run replays byte-identically.
            cfg.with_num_worker_threads(self.cfg.workers)
                .with_deterministic_scheduler(self.cfg.seed)
        } else {
            cfg
        }
    }

    /// Create and start the app for instance `idx`. On a start error (e.g.
    /// restoring through a dead broker) the error is recorded and the slot
    /// stays empty — a later restart event or the drain phase retries.
    fn spawn_instance(&mut self, idx: usize) -> Slot {
        let mut app = KafkaStreamsApp::new(
            self.cluster.clone(),
            self.workload.profile.topology(),
            self.app_config(),
            format!("i{idx}"),
        );
        match app.start() {
            Ok(()) => Some(app),
            Err(e) => {
                self.step_errors.push(format!("start i{idx}: {e}"));
                None
            }
        }
    }

    /// Fire the scripted cluster events scheduled before step `step`.
    fn scripted_events(&mut self, step: u64) {
        let Some(script) = &self.cfg.script else { return };
        let events: Vec<ScriptEvent> = script.events_at(step).collect();
        for event in events {
            match event {
                ScriptEvent::KillBroker => {
                    let alive: Vec<usize> = (0..self.workload.brokers)
                        .filter(|&b| self.cluster.broker_alive(b))
                        .collect();
                    if alive.len() >= 2 {
                        self.cluster.kill_broker(alive[0]);
                        self.events.broker_kills += 1;
                    }
                }
                ScriptEvent::RestoreBroker => {
                    if let Some(dead) =
                        (0..self.workload.brokers).find(|&b| !self.cluster.broker_alive(b))
                    {
                        self.cluster.restore_broker(dead);
                        self.events.broker_restores += 1;
                    }
                }
                ScriptEvent::RestartInstance => {
                    // Crash-restart under the same instance id: the restart
                    // fences the stale transactional producer (epoch bump),
                    // which is what the model's `Fence` action stands for.
                    if let Some(idx) = (0..self.slots.len()).find(|&i| self.slots[i].is_some()) {
                        self.slots[idx].take().expect("picked live").crash();
                        self.events.instance_crashes += 1;
                        self.slots[idx] = self.spawn_instance(idx);
                        if self.slots[idx].is_some() {
                            self.events.instance_restarts += 1;
                        }
                    }
                }
                ScriptEvent::AddInstance => {
                    let idx = self.slots.len();
                    let slot = self.spawn_instance(idx);
                    self.slots.push(slot);
                    self.events.instance_adds += 1;
                }
            }
        }
    }

    /// One scheduled action of the chaos phase.
    fn scheduled_action(&mut self, rng: &mut DetRng) {
        match rng.range(0, 100) {
            0..=39 => self.feed(rng),
            40..=74 => self.step_instance(rng),
            75..=89 => self.clock.advance(rng.range_i64(1, 50)),
            _ => self.cluster_event(rng),
        }
    }

    fn feed(&mut self, rng: &mut DetRng) {
        let n = rng.range(1, 6);
        for _ in 0..n {
            let key = &self.workload.keys[rng.index(self.workload.keys.len())];
            self.base_ts += rng.range_i64(0, 400);
            let jitter = rng.range_i64(0, MAX_JITTER_MS + 1);
            let ts = (self.base_ts - jitter).max(0);
            self.max_ts = self.max_ts.max(ts);
            self.records_fed += 1;
            let sent = self.feeder.send(
                "events",
                Some(key.clone().to_bytes()),
                Some("v".to_string().to_bytes()),
                ts,
            );
            if sent.is_err() {
                // The batch may or may not have landed (lost-ack ambiguity);
                // the oracle folds over the actual topic content, so only
                // note it and start a fresh generator.
                self.feed_errors += 1;
                self.feeder = Producer::new(
                    self.cluster.clone(),
                    ProducerConfig::default().with_batch_size(1),
                );
            }
        }
    }

    fn step_instance(&mut self, rng: &mut DetRng) {
        let live: Vec<usize> = (0..self.slots.len()).filter(|&i| self.slots[i].is_some()).collect();
        if live.is_empty() {
            return;
        }
        let idx = live[rng.index(live.len())];
        let app = self.slots[idx].as_mut().expect("picked from live set");
        if let Err(e) = app.step() {
            // A step error is a process death: drop the instance without
            // commit or group leave, exactly like a crash.
            self.step_errors.push(format!("step i{idx}: {e}"));
            self.slots[idx].take().expect("still present").crash();
        }
    }

    fn cluster_event(&mut self, rng: &mut DetRng) {
        // Disk mode adds a sixth event class; churn mode appends two more
        // (rolling restart, fleet resize). The base 5-way draw is untouched
        // when both are off, so historical memory-mode schedules stay
        // byte-identical.
        let mut classes = 5;
        if self.cfg.disk_storage {
            classes += 1;
        }
        if self.cfg.churn {
            classes += 2;
        }
        let draw = rng.range(0, classes);
        // Map the appended classes back to their handler: durable crash
        // occupies the slot right after the base classes (when enabled),
        // churn the last two.
        if self.cfg.churn && draw >= classes - 2 {
            if draw == classes - 2 {
                self.rolling_restart(rng);
            } else {
                self.fleet_resize(rng);
            }
            return;
        }
        match draw {
            0 => {
                // Kill a broker, but never the last one alive: replication
                // equals the broker count, so any survivor can lead every
                // partition and the run stays live.
                let alive: Vec<usize> =
                    (0..self.workload.brokers).filter(|&b| self.cluster.broker_alive(b)).collect();
                if alive.len() >= 2 {
                    self.cluster.kill_broker(alive[rng.index(alive.len())]);
                    self.events.broker_kills += 1;
                }
            }
            1 => {
                let dead: Vec<usize> =
                    (0..self.workload.brokers).filter(|&b| !self.cluster.broker_alive(b)).collect();
                if !dead.is_empty() {
                    self.cluster.restore_broker(dead[rng.index(dead.len())]);
                    self.events.broker_restores += 1;
                }
            }
            2 => {
                let live: Vec<usize> =
                    (0..self.slots.len()).filter(|&i| self.slots[i].is_some()).collect();
                if !live.is_empty() {
                    let idx = live[rng.index(live.len())];
                    self.slots[idx].take().expect("picked from live set").crash();
                    self.events.instance_crashes += 1;
                }
            }
            3 => {
                let dead: Vec<usize> =
                    (0..self.slots.len()).filter(|&i| self.slots[i].is_none()).collect();
                if !dead.is_empty() {
                    let idx = dead[rng.index(dead.len())];
                    self.slots[idx] = self.spawn_instance(idx);
                    if self.slots[idx].is_some() {
                        self.events.instance_restarts += 1;
                    }
                }
            }
            4 => {
                self.cluster.group_force_rebalance(APP_ID);
                self.events.forced_rebalances += 1;
            }
            _ => self.durable_crash(rng),
        }
    }

    /// Churn fault class: rolling restart — one live instance leaves
    /// *gracefully* (final commit + group leave) and immediately rejoins
    /// under the same id, the way a rolling deploy cycles a fleet. A close
    /// error is a crash (broker faults can kill the final commit).
    fn rolling_restart(&mut self, rng: &mut DetRng) {
        let live: Vec<usize> = (0..self.slots.len()).filter(|&i| self.slots[i].is_some()).collect();
        if live.is_empty() {
            return;
        }
        let idx = live[rng.index(live.len())];
        let mut app = self.slots[idx].take().expect("picked from live set");
        if let Err(e) = app.close() {
            self.step_errors.push(format!("rolling close i{idx}: {e}"));
            app.crash();
        }
        self.events.rolling_restarts += 1;
        self.slots[idx] = self.spawn_instance(idx);
    }

    /// Churn fault class: fleet resize — grow the group with a brand-new
    /// instance id, or gracefully retire a live one (never the last), under
    /// sustained load.
    fn fleet_resize(&mut self, rng: &mut DetRng) {
        let live: Vec<usize> = (0..self.slots.len()).filter(|&i| self.slots[i].is_some()).collect();
        let can_grow = self.slots.len() < self.workload.instances + CHURN_MAX_EXTRA_INSTANCES;
        let grow = if live.len() <= 1 { true } else { can_grow && rng.chance(0.5) };
        if grow {
            if !can_grow {
                return;
            }
            let idx = self.slots.len();
            let slot = self.spawn_instance(idx);
            self.slots.push(slot);
            self.events.instance_adds += 1;
        } else {
            let idx = live[rng.index(live.len())];
            let mut app = self.slots[idx].take().expect("picked from live set");
            if let Err(e) = app.close() {
                self.step_errors.push(format!("retire close i{idx}: {e}"));
                app.crash();
            }
            self.events.instance_removes += 1;
        }
    }

    /// Disk-only fault class: an *honest* durable crash. A coin flip picks
    /// the layer: kill-and-restore a broker in one action (its in-memory
    /// replica is discarded; the restore must rebuild it from segment
    /// files), or crash-and-respawn an app instance in one action (its
    /// tasks must warm-start from the spill files). Either way the only
    /// surviving state is what was actually on disk.
    fn durable_crash(&mut self, rng: &mut DetRng) {
        if rng.chance(0.5) {
            let alive: Vec<usize> =
                (0..self.workload.brokers).filter(|&b| self.cluster.broker_alive(b)).collect();
            if alive.len() >= 2 {
                let b = alive[rng.index(alive.len())];
                self.cluster.kill_broker(b);
                self.cluster.restore_broker(b);
                self.events.durable_crashes += 1;
            }
        } else {
            let live: Vec<usize> =
                (0..self.slots.len()).filter(|&i| self.slots[i].is_some()).collect();
            if !live.is_empty() {
                let idx = live[rng.index(live.len())];
                self.slots[idx].take().expect("picked from live set").crash();
                self.slots[idx] = self.spawn_instance(idx);
                self.events.durable_crashes += 1;
            }
        }
    }

    fn fail(&mut self, msg: String) {
        if self.failures.len() < MAX_FAILURES {
            self.failures.push(msg);
        } else if self.failures.len() == MAX_FAILURES {
            self.failures.push("… further failures suppressed".to_string());
        }
    }

    /// Heal the cluster, restart every instance (fencing all stale
    /// transactions), process to the end of the input, then run the
    /// oracles.
    fn drain_and_check(mut self) -> SimReport {
        self.plan.disable();
        for b in 0..self.workload.brokers {
            if !self.cluster.broker_alive(b) {
                self.cluster.restore_broker(b);
            }
        }
        // Drop every live instance abruptly, expire the whole (now silent)
        // membership, and rejoin fresh: restarting under the same instance
        // ids fences every stale transactional producer via its epoch bump.
        for slot in &mut self.slots {
            if let Some(app) = slot.take() {
                app.crash();
            }
        }
        self.clock.advance(SESSION_TIMEOUT_MS + 1);
        let _ = self.cluster.group_expire_members(APP_ID);

        // Close every data window: one high-timestamp sentinel per input
        // partition pushes stream time past `end + grace` everywhere.
        let sentinel_ts = self.max_ts + WINDOW_MS + GRACE_MS + 10_000;
        let mut closer = Producer::new(self.cluster.clone(), ProducerConfig::default());
        for p in 0..self.workload.partitions {
            let sent = closer.send_to_partition(
                &TopicPartition::new("events", p),
                klog::Record {
                    key: Some(SENTINEL_KEY.to_string().to_bytes()),
                    value: Some("v".to_string().to_bytes()),
                    timestamp: sentinel_ts,
                    headers: Vec::new(),
                },
            );
            if let Err(e) = sent {
                self.fail(format!("sentinel feed events/{p}: {e}"));
            }
        }
        if let Err(e) = closer.flush() {
            self.fail(format!("sentinel flush: {e}"));
        }

        for idx in 0..self.slots.len() {
            self.slots[idx] = self.spawn_instance(idx);
            if self.slots[idx].is_none() {
                self.fail(format!("instance i{idx} failed to start during drain"));
            }
        }

        let input_tps = self.cluster.partitions_of("events").expect("input topic exists");
        let targets: Vec<(TopicPartition, i64)> = input_tps
            .iter()
            .map(|tp| (tp.clone(), self.cluster.latest_offset(tp).expect("healed cluster")))
            .collect();
        let mut converged = false;
        for _ in 0..MAX_DRAIN_ITERS {
            for idx in 0..self.slots.len() {
                if let Some(app) = self.slots[idx].as_mut() {
                    if let Err(e) = app.step() {
                        self.fail(format!("drain step i{idx}: {e}"));
                        self.slots[idx].take().expect("still present").crash();
                    }
                }
            }
            self.clock.advance(20);
            let done = targets.iter().all(|(tp, target)| {
                self.cluster.group_committed_offset(APP_ID, tp).ok().flatten().unwrap_or(0)
                    >= *target
            });
            if done {
                converged = true;
                break;
            }
        }
        if !converged {
            self.fail(format!(
                "drain did not converge within {MAX_DRAIN_ITERS} iterations (committed input offsets short of log end)"
            ));
        }
        for idx in 0..self.slots.len() {
            if let Some(mut app) = self.slots[idx].take() {
                if let Err(e) = app.close() {
                    self.fail(format!("close i{idx}: {e}"));
                }
            }
        }

        let input = read_topic(&self.cluster, "events");
        let output = read_topic(&self.cluster, "out");
        self.check_oracles(&input, &output);

        let violations = klog::checks::take_violations();
        for v in &violations {
            self.fail(format!("protocol {v}"));
        }
        if self.cfg.inject_failure {
            self.fail("injected failure (--inject-failure)".to_string());
        }

        // Metrics ride along when profiling was requested; the trace tail
        // additionally rides along on any oracle failure so the repro line
        // comes with the events leading up to it.
        let obs = if self.cfg.obs_profile { Some(kobs::snapshot()) } else { None };
        let trace = if self.cfg.obs_profile || !self.failures.is_empty() {
            kobs::trace::tail(TRACE_TAIL)
        } else {
            Vec::new()
        };
        // The commit-cycle critical-path breakdown rides with `--profile`;
        // on any oracle failure the flight recorder's most recent span
        // trees are rendered into the report next to the repro line.
        let critical_path =
            if self.cfg.obs_profile { kobs::ktrace::critical_path_summary() } else { None };
        let flight = if self.failures.is_empty() {
            Vec::new()
        } else {
            // Prefer the newest *multi-span* trees: the close path leaves
            // trivial single-span commit roots at the very end of every
            // run, which carry no timeline worth dumping.
            let all = kobs::ktrace::recent_trees(kobs::ktrace::FLIGHT_RECORDER_TREES);
            let rich: Vec<&kobs::SpanTree> = all.iter().filter(|t| t.spans.len() > 1).collect();
            let pick = if rich.is_empty() { all.iter().collect() } else { rich };
            pick.into_iter()
                .rev()
                .take(FLIGHT_DUMP_TREES)
                .rev()
                .map(kobs::ktrace::render_tree)
                .collect()
        };

        SimReport {
            seed: self.cfg.seed,
            steps: self.cfg.steps,
            profile: {
                let mut p = self.workload.profile.name().to_string();
                if self.cfg.profile.is_some() {
                    p.push('!');
                }
                p
            },
            cache_max_entries: self.cfg.cache_max_entries,
            workers: self.cfg.workers,
            storage: if self.cfg.disk_storage { "disk" } else { "memory" }.to_string(),
            churn: self.cfg.churn,
            brokers: self.workload.brokers,
            partitions: self.workload.partitions,
            n_keys: self.workload.keys.len(),
            instances: self.workload.instances,
            records_fed: self.records_fed,
            feed_errors: self.feed_errors,
            input_records: input.len() as u64,
            output_records: output.len() as u64,
            events: self.events,
            fault_counts: self.plan.injection_counts(),
            step_errors: self.step_errors,
            failures: self.failures,
            obs,
            trace,
            critical_path,
            flight,
            inject_failure: self.cfg.inject_failure,
        }
    }

    /// The reference model and the three consistency/completeness checks.
    ///
    /// The reference folds over the *actual committed input topic* (not
    /// over what the generator attempted), so generator-side fault
    /// ambiguity cannot skew it. All maps are `BTreeMap` so failure
    /// messages are emitted in a stable order.
    fn check_oracles(&mut self, input: &[ConsumerRecord], output: &[ConsumerRecord]) {
        // Reference input per key and per (key, window).
        let mut per_key: BTreeMap<String, i64> = BTreeMap::new();
        let mut per_window: BTreeMap<(String, i64), i64> = BTreeMap::new();
        for rec in input {
            let key = match String::from_bytes(rec.key.as_deref().unwrap_or_default()) {
                Ok(k) => k,
                Err(e) => {
                    self.fail(format!(
                        "undecodable input key at {}/{}: {e}",
                        rec.partition, rec.offset
                    ));
                    continue;
                }
            };
            if key == SENTINEL_KEY {
                continue;
            }
            *per_key.entry(key.clone()).or_insert(0) += 1;
            let window = (rec.timestamp / WINDOW_MS) * WINDOW_MS;
            *per_window.entry((key, window)).or_insert(0) += 1;
        }

        // Observed committed output sequences. All outputs for one logical
        // key land on one output partition (hash partitioning on the key
        // bytes), and records of one partition arrive in offset order, so
        // each sequence below is the true commit order.
        match self.workload.profile {
            Profile::Count => {
                let mut seqs: BTreeMap<String, Vec<i64>> = BTreeMap::new();
                for rec in output {
                    let (key, value) = match decode_plain(rec) {
                        Ok(kv) => kv,
                        Err(e) => {
                            self.fail(e);
                            continue;
                        }
                    };
                    if key == SENTINEL_KEY {
                        continue;
                    }
                    seqs.entry(key).or_default().push(value);
                }
                self.check_sequences(&per_key, seqs, "key");
            }
            Profile::Windowed => {
                let Some(seqs) = self.windowed_sequences(output) else { return };
                let reference: BTreeMap<String, i64> =
                    per_window.iter().map(|((k, w), n)| (format!("{k}@{w}"), *n)).collect();
                self.check_sequences(&reference, seqs, "window");
            }
            Profile::Suppressed => {
                let Some(seqs) = self.windowed_sequences(output) else { return };
                // Exactly one final result per closed window (§5): the
                // sentinel closed every data window, so every reference
                // window must emit once, with the complete count.
                for ((key, window), expected) in &per_window {
                    let label = format!("{key}@{window}");
                    match seqs.get(&label) {
                        Some(seq) if seq.as_slice() == [*expected] => {}
                        Some(seq) => self.fail(format!(
                            "suppressed window {label}: expected single final [{expected}], got {seq:?}"
                        )),
                        None => self.fail(format!(
                            "suppressed window {label}: no final result emitted (expected {expected})"
                        )),
                    }
                }
                for label in seqs.keys() {
                    let known = per_window.iter().any(|((k, w), _)| format!("{k}@{w}") == *label);
                    if !known {
                        self.fail(format!("suppressed window {label}: output for unknown window"));
                    }
                }
            }
        }
    }

    /// Decode windowed outputs into per-`key@window` value sequences,
    /// excluding the sentinel key.
    fn windowed_sequences(
        &mut self,
        output: &[ConsumerRecord],
    ) -> Option<BTreeMap<String, Vec<i64>>> {
        let mut seqs: BTreeMap<String, Vec<i64>> = BTreeMap::new();
        for rec in output {
            let wk = match Windowed::<String>::from_bytes(rec.key.as_deref().unwrap_or_default()) {
                Ok(wk) => wk,
                Err(e) => {
                    self.fail(format!(
                        "undecodable windowed output key at {}/{}: {e}",
                        rec.partition, rec.offset
                    ));
                    return None;
                }
            };
            if wk.key == SENTINEL_KEY {
                continue;
            }
            let value = match i64::from_bytes(rec.value.as_deref().unwrap_or_default()) {
                Ok(v) => v,
                Err(e) => {
                    self.fail(format!(
                        "undecodable output value at {}/{}: {e}",
                        rec.partition, rec.offset
                    ));
                    return None;
                }
            };
            seqs.entry(format!("{}@{}", wk.key, wk.window_start)).or_default().push(value);
        }
        Some(seqs)
    }

    /// Exactly-once + completeness for revision streams.
    ///
    /// Without record caches the committed sequence per entity must be
    /// exactly `1..=n` (duplicates repeat, losses gap, reorders step
    /// backwards) and therefore end at the in-order reference total `n`.
    ///
    /// With record caches enabled, same-key revisions within a commit
    /// interval collapse to the last one, so the committed sequence is some
    /// *strictly increasing subsequence of `1..=n`* that still ends at `n`:
    /// duplicates and reorders still step backwards (caught), losses past
    /// the last commit still gap at the tail (caught), and the final
    /// revision — the consistency/completeness claim — is unchanged.
    fn check_sequences(
        &mut self,
        reference: &BTreeMap<String, i64>,
        observed: BTreeMap<String, Vec<i64>>,
        entity: &str,
    ) {
        let cached = self.cfg.cache_max_entries > 0;
        for (label, &n) in reference {
            match observed.get(label) {
                Some(seq) if !cached => {
                    let expected: Vec<i64> = (1..=n).collect();
                    if seq != &expected {
                        self.fail(format!(
                            "{entity} {label}: exactly-once violated — expected 1..={n}, got {seq:?}"
                        ));
                    }
                }
                Some(seq) => {
                    let increasing = seq.windows(2).all(|w| w[0] < w[1]);
                    let in_range = seq.iter().all(|&v| (1..=n).contains(&v));
                    if !increasing || !in_range || seq.last() != Some(&n) {
                        self.fail(format!(
                            "{entity} {label}: cached exactly-once violated — expected a strictly \
                             increasing subsequence of 1..={n} ending at {n}, got {seq:?}"
                        ));
                    }
                }
                None => self.fail(format!(
                    "{entity} {label}: completeness violated — no output (expected final {n})"
                )),
            }
        }
        for label in observed.keys() {
            if !reference.contains_key(label) {
                self.fail(format!("{entity} {label}: output for unknown {entity}"));
            }
        }
    }
}

/// Read a whole topic with a fault-free, read-committed consumer. Records
/// of one partition appear in offset order.
fn read_topic(cluster: &Cluster, topic: &str) -> Vec<ConsumerRecord> {
    let mut consumer =
        Consumer::new(cluster.clone(), "sim-oracle", ConsumerConfig::default().read_committed());
    consumer.assign(cluster.partitions_of(topic).expect("topic exists")).expect("healed cluster");
    let mut out = Vec::new();
    loop {
        let batch = consumer.poll().expect("healed cluster");
        if batch.is_empty() {
            break;
        }
        out.extend(batch);
    }
    out
}

fn decode_plain(rec: &ConsumerRecord) -> Result<(String, i64), String> {
    let key = String::from_bytes(rec.key.as_deref().unwrap_or_default())
        .map_err(|e| format!("undecodable output key at {}/{}: {e}", rec.partition, rec.offset))?;
    let value = i64::from_bytes(rec.value.as_deref().unwrap_or_default()).map_err(|e| {
        format!("undecodable output value at {}/{}: {e}", rec.partition, rec.offset)
    })?;
    Ok((key, value))
}
