//! Seed-derived workload shapes: cluster size, topic shapes, key universe,
//! and the topology profile under test.

use crate::DetRng;
use kstreams::{StreamsBuilder, TimeWindows};
use std::sync::Arc;

/// Tumbling window size used by the windowed profiles.
pub const WINDOW_MS: i64 = 5_000;

/// Grace period for out-of-order records. Strictly larger than
/// [`MAX_JITTER_MS`], so no generated record is ever late-dropped — which
/// makes the completeness oracle exact regardless of interleaving.
pub const GRACE_MS: i64 = 4_000;

/// Maximum backdating applied to a generated record's timestamp.
pub const MAX_JITTER_MS: i64 = 1_500;

/// Which topology the simulated app runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// `events → group_by_key → count → out`: per-key running count.
    Count,
    /// 5s tumbling windowed count with grace: revision stream per window.
    Windowed,
    /// Windowed count + `suppress_until_window_close`: one final per window.
    Suppressed,
}

impl Profile {
    /// Stable display name (also the `--profile` CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            Profile::Count => "count",
            Profile::Windowed => "windowed",
            Profile::Suppressed => "suppressed",
        }
    }

    /// Parse a `--profile` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "count" => Some(Profile::Count),
            "windowed" => Some(Profile::Windowed),
            "suppressed" => Some(Profile::Suppressed),
            _ => None,
        }
    }

    /// Build the topology for this profile, reading `events` and writing
    /// `out`.
    pub fn topology(self) -> Arc<kstreams::topology::Topology> {
        let builder = StreamsBuilder::new();
        let stream = builder.stream::<String, String>("events").group_by_key();
        match self {
            Profile::Count => {
                stream.count("counts").to_stream().to("out");
            }
            Profile::Windowed => {
                stream
                    .windowed_by(TimeWindows::of(WINDOW_MS).grace(GRACE_MS))
                    .count("window-counts")
                    .to_stream()
                    .to("out");
            }
            Profile::Suppressed => {
                stream
                    .windowed_by(TimeWindows::of(WINDOW_MS).grace(GRACE_MS))
                    .count("window-counts")
                    .suppress_until_window_close()
                    .to_stream()
                    .to("out");
            }
        }
        Arc::new(builder.build().expect("static profile topologies are valid"))
    }
}

/// The seed-derived shape of one simulated run.
#[derive(Debug, Clone)]
pub struct Workload {
    pub profile: Profile,
    /// Broker count; replication factor always equals it, so any single
    /// surviving broker can lead every partition through an outage.
    pub brokers: usize,
    /// Partitions of both the input and output topics.
    pub partitions: u32,
    /// Key universe fed into the input topic.
    pub keys: Vec<String>,
    /// Number of `KafkaStreamsApp` instances.
    pub instances: usize,
}

impl Workload {
    /// Derive a workload from the given sub-RNG. `forced_profile` overrides
    /// the profile pick without disturbing the rest of the stream (the pick
    /// is still consumed), so a forced run stays comparable to the organic
    /// one for the same seed.
    pub fn generate(rng: &mut DetRng, forced_profile: Option<Profile>) -> Self {
        let organic = match rng.range(0, 3) {
            0 => Profile::Count,
            1 => Profile::Windowed,
            _ => Profile::Suppressed,
        };
        let brokers = rng.range(2, 4) as usize;
        let partitions = rng.range(1, 5) as u32;
        let n_keys = rng.range(2, 9) as usize;
        let keys = (0..n_keys).map(|k| format!("k{k}")).collect();
        let instances = rng.range(1, 4) as usize;
        Self { profile: forced_profile.unwrap_or(organic), brokers, partitions, keys, instances }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mut a = DetRng::new(99).derive(1);
        let mut b = DetRng::new(99).derive(1);
        let wa = Workload::generate(&mut a, None);
        let wb = Workload::generate(&mut b, None);
        assert_eq!(wa.profile, wb.profile);
        assert_eq!(wa.brokers, wb.brokers);
        assert_eq!(wa.partitions, wb.partitions);
        assert_eq!(wa.keys, wb.keys);
        assert_eq!(wa.instances, wb.instances);
    }

    #[test]
    fn forced_profile_leaves_rest_of_stream_untouched() {
        let mut a = DetRng::new(5).derive(1);
        let mut b = DetRng::new(5).derive(1);
        let wa = Workload::generate(&mut a, None);
        let wb = Workload::generate(&mut b, Some(Profile::Suppressed));
        assert_eq!(wb.profile, Profile::Suppressed);
        assert_eq!(wa.brokers, wb.brokers);
        assert_eq!(wa.partitions, wb.partitions);
        assert_eq!(wa.keys, wb.keys);
    }

    #[test]
    fn grace_covers_jitter() {
        // The completeness oracle's no-late-drop argument. Read through
        // locals so the check guards the consts without tripping
        // clippy::assertions_on_constants.
        let (grace, jitter) = (GRACE_MS, MAX_JITTER_MS);
        assert!(grace > jitter);
    }

    #[test]
    fn profiles_build_valid_topologies() {
        for p in [Profile::Count, Profile::Windowed, Profile::Suppressed] {
            let _ = p.topology();
            assert_eq!(Profile::parse(p.name()), Some(p));
        }
    }
}
