//! Scripted fault schedules: the counterexample→repro bridge.
//!
//! `kcheck` prints every counterexample as a `simtest --script` line. A
//! script is a `;`-separated token list with two token kinds:
//!
//! * `<FaultPoint>@<n>` — the `n`-th operation (1-based) at that fault
//!   point is hit: the ack is dropped (or, for `ProduceRequestLost`, the
//!   request itself). Fault points are the [`FaultPoint`] names, e.g.
//!   `TxnRpcAckLost@2;ProduceAckLost@1`.
//! * `KillBroker@<s>` / `RestoreBroker@<s>` / `RestartInstance@<s>` /
//!   `AddInstance@<s>` — a cluster-level event fired before scheduled step
//!   `s` (1-based).
//!
//! A scripted run replaces the seed-derived probabilistic fault plan with
//! exactly the scripted decisions, so the injected faults are the ones the
//! model checker chose — nothing more. The step schedule (feeding,
//! stepping, clock advances) still comes from the seed.

use simprims::{FaultDecision, FaultPlan, FaultPoint};

/// Cluster-level scripted event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptEvent {
    /// Kill the lowest-numbered alive broker (never the last one).
    KillBroker,
    /// Restore the lowest-numbered dead broker.
    RestoreBroker,
    /// Crash-restart the lowest-numbered live app instance.
    RestartInstance,
    /// Add a brand-new app instance to the group (fleet growth; several at
    /// the same step model a simultaneous N-join).
    AddInstance,
}

/// A parsed `--script` value.
#[derive(Debug, Clone, Default)]
pub struct Script {
    /// Scripted point faults: `(point, nth operation at that point)`.
    pub faults: Vec<(FaultPoint, u64)>,
    /// Cluster events, as `(1-based step, event)`.
    pub events: Vec<(u64, ScriptEvent)>,
}

impl Script {
    /// Parse a `;`-separated token list. Empty input is a valid empty
    /// script (a faultless replay).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut script = Script::default();
        for token in s.split(';').map(str::trim).filter(|t| !t.is_empty()) {
            let (name, at) = token
                .split_once('@')
                .ok_or_else(|| format!("script token `{token}`: expected `<name>@<n>`"))?;
            let n: u64 = at
                .parse()
                .map_err(|_| format!("script token `{token}`: `{at}` is not a number"))?;
            if n == 0 {
                return Err(format!("script token `{token}`: positions are 1-based"));
            }
            match name {
                "KillBroker" => script.events.push((n, ScriptEvent::KillBroker)),
                "RestoreBroker" => script.events.push((n, ScriptEvent::RestoreBroker)),
                "RestartInstance" => script.events.push((n, ScriptEvent::RestartInstance)),
                "AddInstance" => script.events.push((n, ScriptEvent::AddInstance)),
                _ => {
                    let point = FaultPoint::ALL
                        .into_iter()
                        .find(|p| p.name() == name)
                        .ok_or_else(|| format!("script token `{token}`: unknown point `{name}`"))?;
                    script.faults.push((point, n));
                }
            }
        }
        script.events.sort_by_key(|(step, _)| *step);
        Ok(script)
    }

    /// Build the fault plan realizing exactly this script's point faults
    /// (request loss for `ProduceRequestLost`, ack loss everywhere else).
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::seeded(0);
        for &(point, nth) in &self.faults {
            let decision = match point {
                FaultPoint::ProduceRequestLost => FaultDecision::DropRequest,
                _ => FaultDecision::DropAck,
            };
            plan = plan.script(point, nth, decision);
        }
        plan
    }

    /// The events scheduled to fire before step `step` (1-based).
    pub fn events_at(&self, step: u64) -> impl Iterator<Item = ScriptEvent> + '_ {
        self.events.iter().filter(move |(s, _)| *s == step).map(|(_, e)| *e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fault_and_event_tokens() {
        let s = Script::parse("TxnRpcAckLost@2;KillBroker@5;ProduceRequestLost@1;RestoreBroker@9")
            .expect("valid script");
        assert_eq!(
            s.faults,
            vec![(FaultPoint::TxnRpcAckLost, 2), (FaultPoint::ProduceRequestLost, 1)]
        );
        assert_eq!(s.events, vec![(5, ScriptEvent::KillBroker), (9, ScriptEvent::RestoreBroker)]);
        assert_eq!(s.events_at(5).collect::<Vec<_>>(), vec![ScriptEvent::KillBroker]);
        assert_eq!(s.events_at(6).count(), 0);
    }

    #[test]
    fn empty_script_is_valid() {
        let s = Script::parse("").expect("empty is fine");
        assert!(s.faults.is_empty() && s.events.is_empty());
    }

    #[test]
    fn rejects_malformed_tokens() {
        assert!(Script::parse("TxnRpcAckLost").is_err());
        assert!(Script::parse("TxnRpcAckLost@x").is_err());
        assert!(Script::parse("TxnRpcAckLost@0").is_err());
        assert!(Script::parse("NoSuchPoint@1").is_err());
    }

    #[test]
    fn fault_plan_realizes_scripted_decisions() {
        let s = Script::parse("ProduceAckLost@1;ProduceRequestLost@2").expect("valid");
        let plan = s.fault_plan();
        assert_eq!(plan.decide(FaultPoint::ProduceAckLost), FaultDecision::DropAck);
        assert_eq!(plan.decide(FaultPoint::ProduceAckLost), FaultDecision::Deliver);
        assert_eq!(plan.decide(FaultPoint::ProduceRequestLost), FaultDecision::Deliver);
        assert_eq!(plan.decide(FaultPoint::ProduceRequestLost), FaultDecision::DropRequest);
    }
}
