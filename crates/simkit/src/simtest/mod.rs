//! # simtest — deterministic simulation test harness
//!
//! A FoundationDB-style simulation engine for the Kafka-Streams
//! reproduction. One `u64` seed deterministically generates:
//!
//! * a **workload**: topic/partition shapes, a key universe, record
//!   timestamps (including bounded out-of-order jitter), and a topology
//!   profile (plain count, windowed count, or suppressed windowed count),
//! * a **fault schedule**: probabilistic ack/request loss at every
//!   [`FaultPoint`](crate::FaultPoint) plus cluster-level events (broker
//!   kill/restore, instance crash/restart, forced group rebalances), and
//! * an **interleaved step schedule** driving real
//!   [`kstreams::KafkaStreamsApp`] instances on a
//!   [`ManualClock`](crate::ManualClock).
//!
//! After the scheduled run, the engine disables fault injection, heals the
//! cluster, restarts every instance (fencing all stale transactions), and
//! drains until the group's committed input offsets reach the log end. It
//! then checks three oracles against a single-threaded, fault-free
//! reference fold of the *actual committed input*:
//!
//! 1. **Exactly-once** (§4.2): the committed output sequence per key (or
//!    per key+window) is exactly `1, 2, …, n` — a duplicate shows up as a
//!    repeat, a loss as a gap, a reorder as a non-monotone step.
//! 2. **Completeness** (§2.2, §5): the *final revision* per key/window
//!    equals the in-order reference aggregate; under suppression each
//!    closed window emits exactly one final result.
//! 3. **Protocol invariants**: the `klog::checks` violation sink is empty.
//!
//! Every report prints (and every failure panics with) the exact replay
//! command: `cargo run -p simkit --bin simtest -- --seed N --steps M`.

pub mod engine;
pub mod report;
pub mod script;
pub mod workload;

pub use engine::{run, SimConfig};
pub use report::SimReport;
pub use script::{Script, ScriptEvent};
pub use workload::{Profile, Workload, GRACE_MS, MAX_JITTER_MS, WINDOW_MS};
