//! The deterministic run report: everything a human (or a CI log) needs to
//! understand one simulated run, rendered byte-identically for identical
//! seeds.

use crate::FaultPoint;
use std::fmt;

/// Cluster-level event counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    pub broker_kills: u64,
    pub broker_restores: u64,
    pub instance_crashes: u64,
    pub instance_restarts: u64,
    pub forced_rebalances: u64,
    /// Durable crash-restore cycles (`--storage disk` only): a broker or
    /// instance killed and immediately revived from its on-disk state.
    pub durable_crashes: u64,
    /// Rolling restarts (`--churn` only): graceful leave + immediate
    /// rejoin under the same instance id.
    pub rolling_restarts: u64,
    /// Fleet growths (`--churn` or scripted `AddInstance`): brand-new
    /// instances joined under load.
    pub instance_adds: u64,
    /// Fleet shrinks (`--churn` only): live instances gracefully retired.
    pub instance_removes: u64,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    pub seed: u64,
    pub steps: u64,
    /// Profile name; suffixed with `!` when forced via `--profile`.
    pub profile: String,
    /// Record-cache capacity per store (`--cache`); 0 means caching off.
    pub cache_max_entries: usize,
    /// Scheduler workers per instance (`--workers`); 1 means the serial
    /// task loop, >1 the seed-derived virtual work-stealing scheduler.
    pub workers: usize,
    /// Storage backend the brokers ran on: `"memory"` or `"disk"`.
    pub storage: String,
    /// Whether the rebalance-churn fault classes were enabled (`--churn`).
    pub churn: bool,
    pub brokers: usize,
    pub partitions: u32,
    pub n_keys: usize,
    pub instances: usize,
    /// Records handed to the generator producer (excluding sentinels).
    pub records_fed: u64,
    /// Generator flushes that errored out (records possibly not landed —
    /// the oracle folds over the *actual* input topic, so this is
    /// informational).
    pub feed_errors: u64,
    /// Records actually in the input topic at drain (including the
    /// per-partition window-closing sentinels).
    pub input_records: u64,
    /// Committed records read from the output topic.
    pub output_records: u64,
    pub events: EventCounts,
    /// `(point, observed, injected)` per fault point, in stable order.
    pub fault_counts: Vec<(FaultPoint, u64, u64)>,
    /// Instance step/start errors observed during the scheduled run (an
    /// erroring instance is treated as crashed).
    pub step_errors: Vec<String>,
    /// Oracle failures; empty means the run passed.
    pub failures: Vec<String>,
    /// kobs metrics snapshot; present when the run was observability
    /// profiled (`--profile` with no topology argument).
    pub obs: Option<kobs::Snapshot>,
    /// Trailing trace-event window; populated when profiled or when an
    /// oracle failed (so the repro line comes with its context).
    pub trace: Vec<kobs::Event>,
    /// Commit-cycle critical-path breakdown (ktrace); present when the run
    /// was observability profiled and at least one commit cycle completed.
    pub critical_path: Option<kobs::CriticalPathSummary>,
    /// Flight-recorder dump: the last completed span trees, rendered as
    /// indented text. Populated only when an oracle failed, so the repro
    /// line comes with the causal timeline leading up to it.
    pub flight: Vec<String>,
    /// Whether this run carried an injected synthetic oracle failure
    /// (`--inject-failure`), used to exercise the flight-recorder dump.
    pub inject_failure: bool,
}

impl SimReport {
    /// Whether every oracle held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The exact command that replays this run.
    pub fn repro(&self) -> String {
        let mut cmd = format!(
            "cargo run -p simkit --bin simtest -- --seed {} --steps {}",
            self.seed, self.steps
        );
        if let Some(forced) = self.profile.strip_suffix('!') {
            cmd.push_str(&format!(" --profile {forced}"));
        }
        if self.cache_max_entries > 0 {
            cmd.push_str(&format!(" --cache {}", self.cache_max_entries));
        }
        if self.workers > 1 {
            cmd.push_str(&format!(" --workers {}", self.workers));
        }
        if self.storage == "disk" {
            cmd.push_str(" --storage disk");
        }
        if self.churn {
            cmd.push_str(" --churn");
        }
        if self.inject_failure {
            cmd.push_str(" --inject-failure");
        }
        cmd
    }

    /// Total faults injected at `point` during this run.
    pub fn injected(&self, point: FaultPoint) -> u64 {
        self.fault_counts.iter().find(|(p, _, _)| *p == point).map_or(0, |(_, _, i)| *i)
    }

    /// Panic with the full report and replay command unless the run passed.
    pub fn assert_passed(&self) {
        assert!(self.passed(), "simtest oracle failure (reproduce with: {})\n{self}", self.repro());
    }

    /// Machine-readable form of the report (`simtest --json`). Metrics and
    /// trace sections appear only when captured, mirroring [`fmt::Display`].
    pub fn to_json(&self) -> kobs::json::Value {
        use kobs::json::{num, obj, str as jstr, Value};
        let mut fields = vec![
            ("seed", num(self.seed as f64)),
            ("steps", num(self.steps as f64)),
            ("profile", jstr(self.profile.clone())),
            ("cache_max_entries", num(self.cache_max_entries as f64)),
            ("workers", num(self.workers as f64)),
            ("storage", jstr(self.storage.clone())),
            ("churn", Value::Bool(self.churn)),
            ("brokers", num(self.brokers as f64)),
            ("partitions", num(self.partitions as f64)),
            ("instances", num(self.instances as f64)),
            ("records_fed", num(self.records_fed as f64)),
            ("feed_errors", num(self.feed_errors as f64)),
            ("input_records", num(self.input_records as f64)),
            ("output_records", num(self.output_records as f64)),
            ("passed", Value::Bool(self.passed())),
            ("failures", Value::Arr(self.failures.iter().map(|e| jstr(e.clone())).collect())),
            ("repro", jstr(self.repro())),
        ];
        if let Some(obs) = &self.obs {
            fields.push(("metrics", obs.to_json()));
        }
        if !self.trace.is_empty() {
            fields
                .push(("trace", Value::Arr(self.trace.iter().map(kobs::Event::to_json).collect())));
        }
        if let Some(cp) = &self.critical_path {
            fields.push((
                "critical_path",
                obj(vec![
                    ("cycles", num(cp.cycles as f64)),
                    ("total_us", num(cp.total_us as f64)),
                    (
                        "phases",
                        obj(cp
                            .phases
                            .iter()
                            .map(|(name, us)| (*name, num(*us as f64)))
                            .collect::<Vec<_>>()),
                    ),
                    (
                        "longest_chain",
                        Value::Arr(cp.longest_chain.iter().map(|n| jstr(n.to_string())).collect()),
                    ),
                    ("longest_cycle_us", num(cp.longest_cycle_us as f64)),
                ]),
            ));
        }
        if !self.flight.is_empty() {
            fields.push((
                "flight_recorder",
                Value::Arr(self.flight.iter().map(|t| jstr(t.clone())).collect()),
            ));
        }
        obj(fields)
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simtest seed={} steps={} profile={} cache={} workers={} storage={} brokers={} partitions={} keys={} instances={}",
            self.seed,
            self.steps,
            self.profile,
            self.cache_max_entries,
            self.workers,
            self.storage,
            self.brokers,
            self.partitions,
            self.n_keys,
            self.instances
        )?;
        writeln!(
            f,
            "  fed={} feed_errors={} input_records={} output_records={}",
            self.records_fed, self.feed_errors, self.input_records, self.output_records
        )?;
        writeln!(
            f,
            "  events: broker_kills={} broker_restores={} instance_crashes={} instance_restarts={} forced_rebalances={} durable_crashes={} rolling_restarts={} instance_adds={} instance_removes={}",
            self.events.broker_kills,
            self.events.broker_restores,
            self.events.instance_crashes,
            self.events.instance_restarts,
            self.events.forced_rebalances,
            self.events.durable_crashes,
            self.events.rolling_restarts,
            self.events.instance_adds,
            self.events.instance_removes
        )?;
        writeln!(f, "  faults:")?;
        for (point, observed, injected) in &self.fault_counts {
            writeln!(f, "    {:<24} observed={observed} injected={injected}", point.name())?;
        }
        if !self.step_errors.is_empty() {
            writeln!(f, "  step_errors ({}):", self.step_errors.len())?;
            for e in &self.step_errors {
                writeln!(f, "    - {e}")?;
            }
        }
        if let Some(obs) = &self.obs {
            if obs.is_empty() {
                writeln!(f, "  metrics: (empty — instrumentation compiled out?)")?;
            } else {
                writeln!(f, "  metrics:")?;
                for line in obs.to_string().lines() {
                    writeln!(f, "    {line}")?;
                }
            }
        }
        if let Some(cp) = &self.critical_path {
            writeln!(
                f,
                "  critical path: commit_cycles={} total_us={} longest_cycle_us={}",
                cp.cycles, cp.total_us, cp.longest_cycle_us
            )?;
            writeln!(f, "    longest chain: {}", cp.longest_chain.join(" > "))?;
            writeln!(f, "    per-phase self time (sums to total):")?;
            for (name, us) in &cp.phases {
                writeln!(f, "      {name:<16} self_us={us}")?;
            }
        }
        if self.failures.is_empty() {
            writeln!(f, "  oracle: PASS")?;
        } else {
            writeln!(f, "  oracle: FAIL ({} failures)", self.failures.len())?;
            for e in &self.failures {
                writeln!(f, "    - {e}")?;
            }
        }
        if !self.trace.is_empty() {
            writeln!(f, "  trace (last {} events):", self.trace.len())?;
            for e in &self.trace {
                writeln!(f, "    {e}")?;
            }
        }
        if !self.flight.is_empty() {
            writeln!(f, "  flight recorder (last {} span trees):", self.flight.len())?;
            for tree in &self.flight {
                for line in tree.lines() {
                    writeln!(f, "    {line}")?;
                }
            }
        }
        write!(f, "  repro: {}", self.repro())
    }
}
