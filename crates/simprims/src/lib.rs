//! # simprims — deterministic simulation primitives
//!
//! The dependency-free core of the simulation kit: virtual and wall clocks,
//! seeded deterministic RNG, fault-injection plans, and latency/throughput
//! measurement. The broker and streams layers depend on this crate (renamed
//! to `simkit` in their manifests, so source paths read `simkit::…`); the
//! full `simkit` crate re-exports everything here and adds the scenario
//! engine (`simkit::simtest`), which needs to sit *above* those layers.
//!
//! Everything in the workspace that needs "time" takes a [`Clock`] so tests
//! can run on a [`ManualClock`] (fully deterministic, instantaneous) while
//! benchmark harnesses run on the [`WallClock`].

pub mod clock;
pub mod fault;
pub mod hist;
pub mod rng;

pub use clock::{Clock, ManualClock, SharedClock, WallClock};
pub use fault::{FaultDecision, FaultPlan, FaultPoint};
pub use hist::{LatencyHistogram, ThroughputMeter};
pub use rng::DetRng;
