//! Deterministic random number generation.
//!
//! A small, explicitly seeded generator so that every simulated component
//! that needs randomness derives it from one recorded seed, making failure
//! scenarios exactly reproducible. The generator is a self-contained
//! xoshiro256** seeded through splitmix64 (no external dependency, so the
//! workspace builds hermetically), with the same statistical profile the
//! previous `rand::SmallRng` backend provided.

/// Deterministic RNG seeded explicitly; never seeded from the environment.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
    seed: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    pub fn new(seed: u64) -> Self {
        // Expand the 64-bit seed into the full 256-bit state, as the
        // xoshiro authors recommend, so that nearby seeds do not produce
        // correlated streams.
        let mut sm = seed;
        let state =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { state, seed }
    }

    /// The seed this RNG was created with (for logging / reproduction).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child RNG, e.g. one per simulated component.
    /// Children with different `stream` ids produce independent sequences.
    pub fn derive(&self, stream: u64) -> DetRng {
        // Mix the streams with splitmix64-style constants so nearby stream
        // ids do not yield correlated child seeds.
        let mixed = (self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        DetRng::new(mixed)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits, the standard float-from-bits recipe.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() < p
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        // Debiased multiply-shift (Lemire); the retry loop is entered with
        // probability span/2^64, i.e. essentially never for small spans.
        let span = hi - lo;
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(span);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(span);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` for i64.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.range(0, span) as i64)
    }

    /// Pick a uniformly random element index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty collection");
        self.range(0, len as u64) as usize
    }

    /// Raw u64 (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 1 and 2 should not track each other");
    }

    #[test]
    fn derive_is_deterministic_and_independent() {
        let parent = DetRng::new(7);
        let mut c1 = parent.derive(0);
        let mut c1b = parent.derive(0);
        let mut c2 = parent.derive(1);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        // Not a strict guarantee, but astronomically unlikely to collide.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn range_bounds() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_i64_handles_negative_bounds() {
        let mut r = DetRng::new(13);
        for _ in 0..1000 {
            let v = r.range_i64(-50, -10);
            assert!((-50..-10).contains(&v));
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity_over_small_range() {
        let mut r = DetRng::new(17);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.index(8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i} has {c} hits");
        }
    }
}
