//! Clock abstraction: wall-clock for benchmarks, manual clock for
//! deterministic tests.
//!
//! All timestamps in the workspace are milliseconds since an arbitrary
//! epoch, stored as `i64` (matching Kafka's record timestamp convention;
//! `-1` is used by callers to mean "no timestamp").

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// A source of the current time in milliseconds.
///
/// Implementations must be cheap to call and safe to share across threads.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds since the clock's epoch.
    fn now_ms(&self) -> i64;

    /// Sleep (or virtually advance) for `ms` milliseconds.
    ///
    /// On a [`WallClock`] this parks the thread; on a [`ManualClock`] it
    /// advances virtual time immediately, so tests never actually wait.
    fn sleep_ms(&self, ms: i64);
}

/// A shareable, dynamically dispatched clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// Real time, measured from process-local `Instant` at construction.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        // WallClock is the explicitly non-replayable clock; simulations must
        // inject SimClock instead.
        // detlint:allow[wall-clock] the one sanctioned wall-clock source
        Self { start: Instant::now() }
    }

    /// Convenience constructor returning a [`SharedClock`].
    pub fn shared() -> SharedClock {
        Arc::new(Self::new())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> i64 {
        self.start.elapsed().as_millis() as i64
    }

    fn sleep_ms(&self, ms: i64) {
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms as u64));
        }
    }
}

/// A virtual clock advanced explicitly by the test driver.
///
/// Cloning shares the underlying time source, so a clone handed to a
/// component observes advances made through any other handle.
#[derive(Debug, Clone)]
pub struct ManualClock {
    now: Arc<Mutex<i64>>,
}

impl ManualClock {
    /// Create a clock starting at time 0.
    pub fn new() -> Self {
        Self::starting_at(0)
    }

    /// Create a clock starting at `start_ms`.
    pub fn starting_at(start_ms: i64) -> Self {
        Self { now: Arc::new(Mutex::new(start_ms)) }
    }

    /// Advance virtual time by `ms` (must be non-negative).
    pub fn advance(&self, ms: i64) {
        assert!(ms >= 0, "cannot advance a clock backwards");
        *self.now.lock() += ms;
    }

    /// Jump virtual time to `ms`; must not move backwards.
    pub fn set(&self, ms: i64) {
        let mut now = self.now.lock();
        assert!(ms >= *now, "cannot set clock backwards ({ms} < {})", *now);
        *now = ms;
    }

    /// A [`SharedClock`] view of this clock (shares the same time source).
    pub fn shared(&self) -> SharedClock {
        Arc::new(self.clone())
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> i64 {
        *self.now.lock()
    }

    fn sleep_ms(&self, ms: i64) {
        if ms > 0 {
            self.advance(ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_starts_at_zero() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        c.advance(100);
        assert_eq!(c.now_ms(), 100);
        c.advance(0);
        assert_eq!(c.now_ms(), 100);
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let c = ManualClock::new();
        let c2 = c.clone();
        c.advance(42);
        assert_eq!(c2.now_ms(), 42);
        c2.advance(8);
        assert_eq!(c.now_ms(), 50);
    }

    #[test]
    fn manual_clock_sleep_advances() {
        let c = ManualClock::new();
        c.sleep_ms(250);
        assert_eq!(c.now_ms(), 250);
    }

    #[test]
    fn manual_clock_set_forward() {
        let c = ManualClock::new();
        c.set(1000);
        assert_eq!(c.now_ms(), 1000);
    }

    #[test]
    #[should_panic]
    fn manual_clock_set_backwards_panics() {
        let c = ManualClock::starting_at(10);
        c.set(5);
    }

    #[test]
    fn wall_clock_monotonic() {
        let c = WallClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn shared_clock_dyn_dispatch() {
        let c = ManualClock::new();
        let shared: SharedClock = c.shared();
        c.advance(7);
        assert_eq!(shared.now_ms(), 7);
    }
}
