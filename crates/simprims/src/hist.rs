//! Latency histograms and throughput meters for the benchmark harness.
//!
//! The figure-reproduction binaries report end-to-end latency percentiles
//! (record create time → read-committed consumer receive time, as in the
//! paper's §4.3 setup) and sustained throughput.

/// A simple log-bucketed latency histogram over millisecond values.
///
/// Buckets grow geometrically so a single histogram covers sub-millisecond
/// to multi-minute latencies with bounded memory and ~4% relative error.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// bucket i covers [floor(GROWTH^i) - 1, floor(GROWTH^(i+1)) - 1)
    counts: Vec<u64>,
    total: u64,
    sum_ms: u128,
    min_ms: i64,
    max_ms: i64,
}

const GROWTH: f64 = 1.08;
const NUM_BUCKETS: usize = 256;

fn bucket_for(ms: i64) -> usize {
    let v = ms.max(0) as f64 + 1.0;
    let idx = v.log(GROWTH).floor() as usize;
    idx.min(NUM_BUCKETS - 1)
}

fn bucket_lower_bound(idx: usize) -> i64 {
    (GROWTH.powi(idx as i32) - 1.0).floor() as i64
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum_ms: 0,
            min_ms: i64::MAX,
            max_ms: i64::MIN,
        }
    }

    /// Record one latency observation in milliseconds (negative values are
    /// clamped to zero — they can arise from clock granularity).
    pub fn record(&mut self, ms: i64) {
        let ms = ms.max(0);
        self.counts[bucket_for(ms)] += 1;
        self.total += 1;
        self.sum_ms += ms as u128;
        self.min_ms = self.min_ms.min(ms);
        self.max_ms = self.max_ms.max(ms);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn mean_ms(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum_ms as f64 / self.total as f64
    }

    pub fn min_ms(&self) -> i64 {
        if self.total == 0 {
            0
        } else {
            self.min_ms
        }
    }

    pub fn max_ms(&self) -> i64 {
        if self.total == 0 {
            0
        } else {
            self.max_ms
        }
    }

    /// Approximate percentile (`q` in [0, 1]) in milliseconds.
    pub fn percentile_ms(&self, q: f64) -> i64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(i).clamp(self.min_ms, self.max_ms);
            }
        }
        self.max_ms
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ms += other.sum_ms;
        if other.total > 0 {
            self.min_ms = self.min_ms.min(other.min_ms);
            self.max_ms = self.max_ms.max(other.max_ms);
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Counts events over a measured time span to report a rate.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    events: u64,
    start_ms: Option<i64>,
    end_ms: i64,
}

impl ThroughputMeter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` events occurring at time `now_ms`.
    pub fn record(&mut self, n: u64, now_ms: i64) {
        if self.start_ms.is_none() {
            self.start_ms = Some(now_ms);
        }
        self.end_ms = self.end_ms.max(now_ms);
        self.events += n;
    }

    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events per second over the observed span (0 if the span is empty).
    pub fn rate_per_sec(&self) -> f64 {
        match self.start_ms {
            Some(start) if self.end_ms > start => {
                self.events as f64 * 1000.0 / (self.end_ms - start) as f64
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.percentile_ms(0.5), 0);
        assert_eq!(h.min_ms(), 0);
        assert_eq!(h.max_ms(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean_ms(), 100.0);
        assert_eq!(h.min_ms(), 100);
        assert_eq!(h.max_ms(), 100);
        let p50 = h.percentile_ms(0.5);
        assert!((90..=110).contains(&p50), "p50={p50}");
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for i in 0..1000 {
            h.record(i);
        }
        let p50 = h.percentile_ms(0.5);
        let p90 = h.percentile_ms(0.9);
        let p99 = h.percentile_ms(0.99);
        assert!(p50 <= p90 && p90 <= p99, "p50={p50} p90={p90} p99={p99}");
        assert!((400..620).contains(&p50), "p50={p50}");
        assert!((800..1010).contains(&p90), "p90={p90}");
    }

    #[test]
    fn negative_latencies_clamped() {
        let mut h = LatencyHistogram::new();
        h.record(-5);
        assert_eq!(h.min_ms(), 0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_ms(), 10);
        assert_eq!(a.max_ms(), 1000);
    }

    #[test]
    fn large_values_do_not_overflow_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(i64::MAX / 2);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn throughput_meter_rate() {
        let mut m = ThroughputMeter::new();
        m.record(500, 0);
        m.record(500, 1000);
        assert_eq!(m.events(), 1000);
        assert!((m.rate_per_sec() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_meter_empty_span() {
        let mut m = ThroughputMeter::new();
        m.record(10, 5);
        assert_eq!(m.rate_per_sec(), 0.0);
        assert_eq!(m.events(), 10);
    }
}
