//! Latency histograms and throughput meters, re-exported from `kobs`.
//!
//! The types were promoted into `crates/kobs` so the metrics registry,
//! broker/streams instrumentation, and the bench harness all share one
//! histogram implementation; this module keeps `simprims::hist` (and the
//! `simkit::hist` alias the broker/streams crates see) source-compatible.

pub use kobs::hist::{LatencyHistogram, ThroughputMeter};
