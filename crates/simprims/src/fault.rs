//! Fault injection plans.
//!
//! The paper (§2.1) identifies three failure classes a streaming system must
//! mask: storage-engine failures, stream-processor failures, and
//! inter-processor RPC failures (lost acknowledgements leading to retries and
//! duplicates). [`FaultPlan`] lets tests and benchmarks inject exactly those,
//! either probabilistically (seeded, reproducible) or scripted ("drop the ack
//! of the 3rd produce request").

use crate::rng::DetRng;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Where in the protocol a fault may be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// The broker appended the batch but the producer never sees the ack
    /// (network jitter / timeout) — producer will retry, exercising
    /// idempotent dedup.
    ProduceAckLost,
    /// The produce request itself is lost before reaching the broker.
    ProduceRequestLost,
    /// A consumer fetch response is lost (consumer will re-fetch).
    FetchResponseLost,
    /// A transaction-coordinator RPC response is lost after the coordinator
    /// applied it.
    TxnRpcAckLost,
    /// An AddPartitionsToTxn coordinator ack is lost after the partition was
    /// registered; the producer retries the (idempotent) registration.
    TxnAddPartitionsAckLost,
    /// An offset-commit ack is lost; the consumer retries the (idempotent,
    /// last-write-wins) commit.
    OffsetCommitAckLost,
}

impl FaultPoint {
    /// Every fault point, in a fixed order (stable across runs, used by
    /// deterministic reports).
    pub const ALL: [FaultPoint; 6] = [
        FaultPoint::ProduceAckLost,
        FaultPoint::ProduceRequestLost,
        FaultPoint::FetchResponseLost,
        FaultPoint::TxnRpcAckLost,
        FaultPoint::TxnAddPartitionsAckLost,
        FaultPoint::OffsetCommitAckLost,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::ProduceAckLost => "ProduceAckLost",
            FaultPoint::ProduceRequestLost => "ProduceRequestLost",
            FaultPoint::FetchResponseLost => "FetchResponseLost",
            FaultPoint::TxnRpcAckLost => "TxnRpcAckLost",
            FaultPoint::TxnAddPartitionsAckLost => "TxnAddPartitionsAckLost",
            FaultPoint::OffsetCommitAckLost => "OffsetCommitAckLost",
        }
    }
}

/// The decision for one protocol operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed normally.
    Deliver,
    /// The operation's effect happens but the acknowledgement is dropped.
    DropAck,
    /// The operation is dropped entirely (no effect, no ack).
    DropRequest,
}

#[derive(Debug, Default, Clone)]
struct PointPlan {
    /// Probability that an operation at this point loses its ack.
    ack_loss_prob: f64,
    /// Probability that an operation is dropped before taking effect.
    request_loss_prob: f64,
    /// Scripted one-shot faults: operation counter values (1-based) at which
    /// to force a decision.
    scripted: HashMap<u64, FaultDecision>,
    /// Number of operations observed at this point so far.
    count: u64,
    /// Number of non-`Deliver` decisions handed out at this point.
    injected: u64,
}

/// A shareable, seeded fault plan consulted by the simulated RPC layer.
///
/// A default-constructed plan injects no faults, so production-path code pays
/// only a cheap check.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<FaultPlanInner>>,
}

#[derive(Debug)]
struct FaultPlanInner {
    rng: DetRng,
    points: HashMap<FaultPoint, PointPlan>,
    enabled: bool,
}

impl Default for FaultPlanInner {
    fn default() -> Self {
        Self { rng: DetRng::new(0), points: HashMap::new(), enabled: true }
    }
}

impl FaultPlan {
    /// A plan that never injects faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with a given RNG seed for probabilistic faults.
    pub fn seeded(seed: u64) -> Self {
        let plan = Self::default();
        plan.inner.lock().rng = DetRng::new(seed);
        plan
    }

    /// Set the probability that operations at `point` lose their ack.
    pub fn with_ack_loss(self, point: FaultPoint, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob));
        self.inner.lock().points.entry(point).or_default().ack_loss_prob = prob;
        self
    }

    /// Set the probability that operations at `point` are dropped entirely.
    pub fn with_request_loss(self, point: FaultPoint, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob));
        self.inner.lock().points.entry(point).or_default().request_loss_prob = prob;
        self
    }

    /// Script a one-shot fault: the `nth` (1-based) operation observed at
    /// `point` gets `decision`.
    pub fn script(self, point: FaultPoint, nth: u64, decision: FaultDecision) -> Self {
        assert!(nth >= 1, "operation counters are 1-based");
        self.inner.lock().points.entry(point).or_default().scripted.insert(nth, decision);
        self
    }

    /// Disable all fault injection (e.g. during a recovery phase of a test).
    pub fn disable(&self) {
        self.inner.lock().enabled = false;
    }

    /// Re-enable fault injection.
    pub fn enable(&self) {
        self.inner.lock().enabled = true;
    }

    /// Consult the plan for the next operation at `point`.
    pub fn decide(&self, point: FaultPoint) -> FaultDecision {
        let mut inner = self.inner.lock();
        if !inner.enabled {
            return FaultDecision::Deliver;
        }
        // Split borrow: take what we need from the map entry first.
        let plan = inner.points.entry(point).or_default();
        plan.count += 1;
        let count = plan.count;
        if let Some(&d) = plan.scripted.get(&count) {
            if d != FaultDecision::Deliver {
                plan.injected += 1;
            }
            return d;
        }
        let (alp, rlp) = (plan.ack_loss_prob, plan.request_loss_prob);
        if rlp > 0.0 && inner.rng.chance(rlp) {
            inner.points.get_mut(&point).expect("entry above").injected += 1;
            return FaultDecision::DropRequest;
        }
        if alp > 0.0 && inner.rng.chance(alp) {
            inner.points.get_mut(&point).expect("entry above").injected += 1;
            return FaultDecision::DropAck;
        }
        FaultDecision::Deliver
    }

    /// Number of operations observed so far at `point`.
    pub fn observed(&self, point: FaultPoint) -> u64 {
        self.inner.lock().points.get(&point).map_or(0, |p| p.count)
    }

    /// Number of faults actually injected (non-`Deliver` decisions) at
    /// `point`.
    pub fn injected(&self, point: FaultPoint) -> u64 {
        self.inner.lock().points.get(&point).map_or(0, |p| p.injected)
    }

    /// `(point, observed, injected)` for every fault point, in the stable
    /// [`FaultPoint::ALL`] order — byte-identical across identical runs.
    pub fn injection_counts(&self) -> Vec<(FaultPoint, u64, u64)> {
        let inner = self.inner.lock();
        FaultPoint::ALL
            .iter()
            .map(|&p| {
                let (o, i) = inner.points.get(&p).map_or((0, 0), |pp| (pp.count, pp.injected));
                (p, o, i)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_always_delivers() {
        let plan = FaultPlan::none();
        for _ in 0..100 {
            assert_eq!(plan.decide(FaultPoint::ProduceAckLost), FaultDecision::Deliver);
        }
    }

    #[test]
    fn scripted_fault_fires_once_at_exact_count() {
        let plan = FaultPlan::none().script(FaultPoint::ProduceAckLost, 3, FaultDecision::DropAck);
        assert_eq!(plan.decide(FaultPoint::ProduceAckLost), FaultDecision::Deliver);
        assert_eq!(plan.decide(FaultPoint::ProduceAckLost), FaultDecision::Deliver);
        assert_eq!(plan.decide(FaultPoint::ProduceAckLost), FaultDecision::DropAck);
        assert_eq!(plan.decide(FaultPoint::ProduceAckLost), FaultDecision::Deliver);
    }

    #[test]
    fn probabilistic_faults_are_reproducible() {
        let run = |seed| {
            let plan = FaultPlan::seeded(seed).with_ack_loss(FaultPoint::ProduceAckLost, 0.3);
            (0..64).map(|_| plan.decide(FaultPoint::ProduceAckLost)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn probabilistic_rate_roughly_matches() {
        let plan = FaultPlan::seeded(1).with_ack_loss(FaultPoint::ProduceAckLost, 0.5);
        let dropped = (0..2000)
            .filter(|_| plan.decide(FaultPoint::ProduceAckLost) == FaultDecision::DropAck)
            .count();
        assert!((800..1200).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn disable_suppresses_faults() {
        let plan = FaultPlan::seeded(1).with_ack_loss(FaultPoint::ProduceAckLost, 1.0);
        assert_eq!(plan.decide(FaultPoint::ProduceAckLost), FaultDecision::DropAck);
        plan.disable();
        assert_eq!(plan.decide(FaultPoint::ProduceAckLost), FaultDecision::Deliver);
        plan.enable();
        assert_eq!(plan.decide(FaultPoint::ProduceAckLost), FaultDecision::DropAck);
    }

    #[test]
    fn points_are_independent() {
        let plan = FaultPlan::seeded(1).with_ack_loss(FaultPoint::ProduceAckLost, 1.0);
        assert_eq!(plan.decide(FaultPoint::FetchResponseLost), FaultDecision::Deliver);
        assert_eq!(plan.decide(FaultPoint::ProduceAckLost), FaultDecision::DropAck);
    }

    #[test]
    fn observed_counts() {
        let plan = FaultPlan::none();
        plan.decide(FaultPoint::TxnRpcAckLost);
        plan.decide(FaultPoint::TxnRpcAckLost);
        assert_eq!(plan.observed(FaultPoint::TxnRpcAckLost), 2);
        assert_eq!(plan.observed(FaultPoint::ProduceRequestLost), 0);
    }

    #[test]
    fn injected_counts_track_non_deliver_decisions() {
        let plan = FaultPlan::none()
            .script(FaultPoint::ProduceAckLost, 2, FaultDecision::DropAck)
            .script(FaultPoint::ProduceAckLost, 3, FaultDecision::DropRequest);
        for _ in 0..4 {
            plan.decide(FaultPoint::ProduceAckLost);
        }
        assert_eq!(plan.observed(FaultPoint::ProduceAckLost), 4);
        assert_eq!(plan.injected(FaultPoint::ProduceAckLost), 2);
        let counts = plan.injection_counts();
        assert_eq!(counts.len(), FaultPoint::ALL.len());
        assert_eq!(counts[0], (FaultPoint::ProduceAckLost, 4, 2));
        assert_eq!(counts[2], (FaultPoint::FetchResponseLost, 0, 0));
    }

    #[test]
    fn request_loss_takes_priority_over_ack_loss() {
        let plan = FaultPlan::seeded(2)
            .with_request_loss(FaultPoint::ProduceRequestLost, 1.0)
            .with_ack_loss(FaultPoint::ProduceRequestLost, 1.0);
        assert_eq!(plan.decide(FaultPoint::ProduceRequestLost), FaultDecision::DropRequest);
    }
}
