//! Kill-and-restore property test for the disk storage backend.
//!
//! Drives a disk-attached [`PartitionLog`] through a randomized script of
//! plain, idempotent, and transactional appends (plus prefix truncations)
//! with a tiny segment-roll threshold so every script crosses several
//! segment rolls. Then it "crashes" the instance — drops the handle,
//! discarding ALL in-memory state — reopens the directory through real
//! recovery ([`DiskLog::recover`] + [`PartitionLog::from_recovered`]), and
//! asserts the rebuilt log is byte-identical to the pre-crash one:
//!
//! * every stored batch round-trips (checked both structurally and on the
//!   encoded wire bytes),
//! * log start / end, high watermark, and last stable offset match,
//! * the aborted-transaction index matches (read-committed correctness),
//! * producer dedup state matches (a duplicate after recovery is still
//!   recognised),
//! * no protocol-invariant violations were recorded in the sink.

use bytes::Bytes;
use klog::batch::{BatchMeta, ControlType};
use klog::checks;
use klog::storage::format::encode_batch;
use klog::{DiskConfig, DiskLog, PartitionLog, Record};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One step of the randomized workload.
#[derive(Debug, Clone)]
enum Op {
    /// Append a non-transactional batch.
    Plain(Vec<(String, String)>),
    /// Append a transactional batch from producer `pid_idx`.
    Txn(usize, Vec<(String, String)>),
    /// End producer `pid_idx`'s open transaction (commit or abort). A no-op
    /// when the producer has no open transaction.
    End(usize, bool),
    /// Truncate the log prefix at roughly `pct`% of the current length.
    TruncatePrefix(u8),
}

const PRODUCERS: usize = 3;

fn arb_kvs() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(("[a-f]{1,4}", "[a-z]{0,8}"), 1..4)
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Weighted choice: 3 plain / 3 txn / 2 end-txn / 1 truncate.
    (0u8..9, 0usize..PRODUCERS, any::<bool>(), 0u8..80, arb_kvs()).prop_map(
        |(w, p, c, pct, kvs)| match w {
            0..=2 => Op::Plain(kvs),
            3..=5 => Op::Txn(p, kvs),
            6..=7 => Op::End(p, c),
            _ => Op::TruncatePrefix(pct),
        },
    )
}

fn recs(kvs: &[(String, String)], ts: i64) -> Vec<Record> {
    kvs.iter()
        .map(|(k, v)| {
            Record::new(
                Some(Bytes::from(k.clone().into_bytes())),
                Some(Bytes::from(v.clone().into_bytes())),
                ts,
            )
        })
        .collect()
}

fn case_dir() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("klog-killrestore-{}-{n}", std::process::id()))
}

/// Everything observable about a log that recovery must preserve.
#[derive(Debug, PartialEq)]
struct Observed {
    log_start: i64,
    log_end: i64,
    high_watermark: i64,
    last_stable_offset: i64,
    aborted: Vec<klog::AbortedTxn>,
    batches: Vec<klog::StoredBatch>,
    encoded: Vec<Vec<u8>>,
}

fn observe(log: &PartitionLog) -> Observed {
    let batches: Vec<_> = log.batches().cloned().collect();
    let encoded = batches.iter().map(encode_batch).collect();
    Observed {
        log_start: log.log_start(),
        log_end: log.log_end(),
        high_watermark: log.high_watermark(),
        last_stable_offset: log.last_stable_offset(),
        aborted: log.aborted_txns().to_vec(),
        batches,
        encoded,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn crash_recovery_is_byte_identical(ops in prop::collection::vec(arb_op(), 1..40)) {
        checks::take_violations();
        let dir = case_dir();
        // roll=3 records: scripts of up to ~120 records cross many rolls.
        let cfg = DiskConfig::at(&dir).with_roll_records(3);
        let mut log = PartitionLog::new();
        log.attach_disk(DiskLog::open_clean(cfg.clone()).unwrap());

        let mut next_seq = [0i64; PRODUCERS];
        let mut open = [false; PRODUCERS];
        let mut ts = 0i64;
        for op in &ops {
            ts += 1;
            match op {
                Op::Plain(kvs) => {
                    log.append(BatchMeta::plain(), recs(kvs, ts)).unwrap();
                }
                Op::Txn(p, kvs) => {
                    let pid = 100 + *p as i64;
                    let meta = BatchMeta::transactional(pid, 0, next_seq[*p]);
                    let out = log.append(meta, recs(kvs, ts)).unwrap();
                    if !out.duplicate {
                        next_seq[*p] += kvs.len() as i64;
                    }
                    open[*p] = true;
                }
                Op::End(p, commit) => {
                    if open[*p] {
                        let pid = 100 + *p as i64;
                        let ctl = if *commit { ControlType::Commit } else { ControlType::Abort };
                        log.append_control(pid, 0, ctl, ts).unwrap();
                        open[*p] = false;
                    }
                }
                Op::TruncatePrefix(pct) => {
                    let len = log.log_end() - log.log_start();
                    // Stay below the LSO so we never cut an open transaction's
                    // first offset out from under the aborted-index replay.
                    let cut = (log.log_start() + len * i64::from(*pct) / 100)
                        .min(log.last_stable_offset());
                    log.truncate_prefix(cut);
                }
            }
        }

        let before = observe(&log);

        // Crash: drop the handle. All in-memory state is gone; only the
        // files under `dir` survive.
        drop(log);

        let recovered = PartitionLog::from_recovered(DiskLog::recover(cfg).unwrap());
        let after = observe(&recovered);
        prop_assert_eq!(&before, &after);

        // Dedup state survived: replaying the last transactional batch of
        // each producer must be flagged as a duplicate, not re-appended.
        let mut log = recovered;
        for p in 0..PRODUCERS {
            let last = log
                .batches()
                .filter(|b| b.meta.producer_id == 100 + p as i64 && !b.meta.is_control())
                .last()
                .cloned();
            if let Some(b) = last {
                let meta = BatchMeta::transactional(b.meta.producer_id, 0, b.meta.base_sequence);
                let out = log.append(meta, b.entries.iter().map(|(_, r)| r.clone()).collect());
                let out = out.unwrap();
                prop_assert!(out.duplicate, "recovered log must still dedup producer {p}");
            }
        }

        let violations = checks::take_violations();
        prop_assert!(violations.is_empty(), "invariant violations: {violations:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
