//! Property-based tests for the log substrate's core invariants.

use bytes::Bytes;
use klog::batch::{BatchMeta, ControlType};
use klog::compaction::{compact, CompactionOptions};
use klog::{IsolationLevel, PartitionLog, Record};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_record() -> impl Strategy<Value = Record> {
    ("[a-d]{1,3}", "[a-z]{0,6}", 0i64..10_000).prop_map(|(k, v, ts)| {
        Record::new(Some(Bytes::from(k.into_bytes())), Some(Bytes::from(v.into_bytes())), ts)
    })
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<Record>>> {
    prop::collection::vec(prop::collection::vec(arb_record(), 1..5), 1..40)
}

/// Replay a log into a key → latest-value map (read-uncommitted).
fn materialize(log: &PartitionLog) -> HashMap<Bytes, Option<Bytes>> {
    let mut state = HashMap::new();
    let mut pos = log.log_start();
    loop {
        let f = log.fetch(pos, 10_000, IsolationLevel::ReadUncommitted).unwrap();
        if f.count() == 0 && f.next_offset == pos {
            break;
        }
        for (_, rec) in f.records() {
            if let Some(k) = &rec.key {
                state.insert(k.clone(), rec.value.clone());
            }
        }
        pos = f.next_offset;
    }
    state
}

proptest! {
    /// Appends assign dense, strictly increasing offsets, and fetch returns
    /// exactly what was appended, in order.
    #[test]
    fn append_fetch_round_trip(batches in arb_batches()) {
        let mut log = PartitionLog::new();
        let mut expected = Vec::new();
        for batch in &batches {
            let out = log.append(BatchMeta::plain(), batch.clone()).unwrap();
            prop_assert_eq!(out.base_offset, expected.len() as i64);
            expected.extend(batch.iter().cloned());
        }
        let f = log.fetch(0, usize::MAX, IsolationLevel::ReadUncommitted).unwrap();
        prop_assert_eq!(f.count(), expected.len());
        for ((off, got), (i, want)) in f.records().zip(expected.iter().enumerate()) {
            prop_assert_eq!(off, i as i64);
            prop_assert_eq!(got, want);
        }
    }

    /// Fetching in arbitrary chunk sizes yields the same stream as one big
    /// fetch.
    #[test]
    fn chunked_fetch_equals_full_fetch(
        batches in arb_batches(),
        chunk in 1usize..7,
    ) {
        let mut log = PartitionLog::new();
        for batch in &batches {
            log.append(BatchMeta::plain(), batch.clone()).unwrap();
        }
        let full: Vec<(i64, Record)> = log
            .fetch(0, usize::MAX, IsolationLevel::ReadUncommitted)
            .unwrap()
            .records()
            .map(|(o, r)| (o, r.clone()))
            .collect();
        let mut chunked = Vec::new();
        let mut pos = 0;
        loop {
            let f = log.fetch(pos, chunk, IsolationLevel::ReadUncommitted).unwrap();
            if f.count() == 0 {
                break;
            }
            chunked.extend(f.records().map(|(o, r)| (o, r.clone())));
            pos = f.next_offset;
        }
        prop_assert_eq!(full, chunked);
    }

    /// Idempotent duplicate retries never grow the log, regardless of the
    /// retry pattern.
    #[test]
    fn duplicates_never_grow_log(
        batches in prop::collection::vec(prop::collection::vec(arb_record(), 1..4), 1..15),
        retries in prop::collection::vec(any::<bool>(), 1..15),
    ) {
        let mut log = PartitionLog::new();
        let mut seq = 0i64;
        let mut total = 0usize;
        for (i, batch) in batches.iter().enumerate() {
            let meta = BatchMeta::idempotent(1, 0, seq);
            log.append(meta.clone(), batch.clone()).unwrap();
            total += batch.len();
            // Retry the same batch 0..n times.
            if retries.get(i % retries.len()).copied().unwrap_or(false) {
                let out = log.append(meta, batch.clone()).unwrap();
                prop_assert!(out.duplicate);
            }
            seq += batch.len() as i64;
        }
        prop_assert_eq!(log.record_count(), total);
    }

    /// Compaction preserves the materialized view: replaying the compacted
    /// log yields exactly the same key→latest-value map.
    #[test]
    fn compaction_preserves_materialized_state(batches in arb_batches()) {
        let mut log = PartitionLog::new();
        for batch in &batches {
            log.append(BatchMeta::plain(), batch.clone()).unwrap();
        }
        let before = materialize(&log);
        let stats = compact(&mut log, CompactionOptions::default());
        let after = materialize(&log);
        prop_assert_eq!(&before, &after);
        // And the compacted log holds at most one record per key.
        prop_assert!(stats.records_after <= before.len());
    }

    /// Compaction is idempotent.
    #[test]
    fn compaction_idempotent(batches in arb_batches()) {
        let mut log = PartitionLog::new();
        for batch in &batches {
            log.append(BatchMeta::plain(), batch.clone()).unwrap();
        }
        compact(&mut log, CompactionOptions::default());
        let once = materialize(&log);
        let stats = compact(&mut log, CompactionOptions::default());
        prop_assert_eq!(stats.records_before, stats.records_after);
        prop_assert_eq!(once, materialize(&log));
    }

    /// Producer-state recovery from the log is equivalent to the live
    /// table: retried batches are still recognised afterwards.
    #[test]
    fn recovery_preserves_dedup(
        batches in prop::collection::vec(prop::collection::vec(arb_record(), 1..4), 1..10),
    ) {
        let mut log = PartitionLog::new();
        let mut seq = 0i64;
        let mut metas = Vec::new();
        for batch in &batches {
            let meta = BatchMeta::idempotent(3, 0, seq);
            log.append(meta.clone(), batch.clone()).unwrap();
            metas.push((meta, batch.clone()));
            seq += batch.len() as i64;
        }
        log.recover_producer_state();
        // The most recent batch is still recognised as a duplicate.
        let (meta, batch) = metas.last().unwrap().clone();
        let out = log.append(meta, batch).unwrap();
        prop_assert!(out.duplicate);
    }

    /// Read-committed never returns records of an open or aborted
    /// transaction, and the two isolation levels agree on committed data.
    #[test]
    fn isolation_invariants(
        committed in prop::collection::vec(arb_record(), 0..10),
        aborted in prop::collection::vec(arb_record(), 0..10),
        open in prop::collection::vec(arb_record(), 0..10),
    ) {
        let mut log = PartitionLog::new();
        if !committed.is_empty() {
            log.append(BatchMeta::transactional(1, 0, 0), committed.clone()).unwrap();
            log.append_control(1, 0, ControlType::Commit, 0).unwrap();
        }
        if !aborted.is_empty() {
            log.append(BatchMeta::transactional(2, 0, 0), aborted.clone()).unwrap();
            log.append_control(2, 0, ControlType::Abort, 0).unwrap();
        }
        if !open.is_empty() {
            log.append(BatchMeta::transactional(3, 0, 0), open.clone()).unwrap();
        }
        let rc = log.fetch(0, usize::MAX, IsolationLevel::ReadCommitted).unwrap();
        prop_assert_eq!(rc.count(), committed.len());
        let ru = log.fetch(0, usize::MAX, IsolationLevel::ReadUncommitted).unwrap();
        prop_assert_eq!(ru.count(), committed.len() + aborted.len() + open.len());
        // LSO: everything below it is decided.
        prop_assert!(log.last_stable_offset() <= log.log_end());
        if open.is_empty() {
            prop_assert_eq!(log.last_stable_offset(), log.log_end());
        }
    }

    /// Prefix truncation only removes data below the cut, and watermarks
    /// stay consistent.
    #[test]
    fn truncate_prefix_invariants(
        batches in arb_batches(),
        cut_frac in 0.0f64..1.2,
    ) {
        let mut log = PartitionLog::new();
        for batch in &batches {
            log.append(BatchMeta::plain(), batch.clone()).unwrap();
        }
        let end = log.log_end();
        let cut = ((end as f64) * cut_frac) as i64;
        log.truncate_prefix(cut);
        prop_assert!(log.log_start() <= end);
        prop_assert!(log.log_start() >= cut.min(end).min(log.log_start()));
        prop_assert_eq!(log.log_end(), end, "truncation must not move the end");
        let f = log
            .fetch(log.log_start(), usize::MAX, IsolationLevel::ReadUncommitted)
            .unwrap();
        for (off, _) in f.records() {
            prop_assert!(off >= log.log_start());
        }
    }
}
