//! Key-based log compaction (§3.2).
//!
//! Changelog topics record every state-store update; brokers "remove records
//! for which another record was appended with the same key but a higher
//! offset". Compaction is what keeps changelogs bounded by *state size*
//! rather than *update count*, making restore-by-replay cheap (§4's
//! "disposable materialized views").
//!
//! Rules implemented here, matching Kafka's cleaner:
//! * only the *stable* region is compacted — offsets below
//!   `min(high watermark, last stable offset)`; the dirty tail is untouched,
//! * original offsets are preserved (batches become sparse),
//! * records of **aborted** transactions are removed outright,
//! * control (marker) batches are retained,
//! * keyless records are never compacted away,
//! * tombstones (null values) are retained as the latest value for their key
//!   unless `remove_tombstones` is set, in which case the key disappears.

use crate::batch::StoredBatch;
use crate::log::PartitionLog;
use crate::Offset;
use bytes::Bytes;
use std::collections::HashMap;

/// Options controlling one compaction pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactionOptions {
    /// Drop tombstones that are the latest record for their key (the
    /// "delete retention elapsed" phase of Kafka's cleaner).
    pub remove_tombstones: bool,
}

/// What a compaction pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Records in the compacted range before the pass.
    pub records_before: usize,
    /// Records retained after the pass.
    pub records_after: usize,
    /// Approximate bytes before the pass.
    pub bytes_before: usize,
    /// Approximate bytes retained after the pass.
    pub bytes_after: usize,
}

impl CompactionStats {
    /// Fraction of records removed, in `[0, 1]`.
    pub fn reclaimed_fraction(&self) -> f64 {
        if self.records_before == 0 {
            0.0
        } else {
            1.0 - self.records_after as f64 / self.records_before as f64
        }
    }
}

/// Run one compaction pass over `log`.
pub fn compact(log: &mut PartitionLog, opts: CompactionOptions) -> CompactionStats {
    let bound: Offset = log.high_watermark().min(log.last_stable_offset());
    let aborted = log.aborted_txns().to_vec();
    let is_aborted = |batch: &StoredBatch| {
        batch.meta.transactional
            && !batch.meta.is_control()
            && aborted.iter().any(|a| {
                a.producer_id == batch.meta.producer_id
                    && a.first_offset <= batch.base_offset()
                    && batch.base_offset() < a.marker_offset
            })
    };

    let before: Vec<StoredBatch> = log.batches().cloned().collect();
    let records_before: usize =
        before.iter().filter(|b| !b.meta.is_control()).map(StoredBatch::len).sum();
    let bytes_before: usize = before.iter().map(StoredBatch::approximate_size).sum();

    // Pass 1: latest retained offset per key in the clean region.
    let mut latest: HashMap<Bytes, Offset> = HashMap::new();
    for batch in &before {
        if batch.meta.is_control() || is_aborted(batch) {
            continue;
        }
        for (off, rec) in &batch.entries {
            if *off >= bound {
                break;
            }
            if let Some(key) = &rec.key {
                latest.insert(key.clone(), *off);
            }
        }
    }

    // Pass 2: rewrite batches.
    let mut out: Vec<StoredBatch> = Vec::with_capacity(before.len());
    for batch in before {
        if batch.meta.is_control() {
            out.push(batch);
            continue;
        }
        let aborted_batch = is_aborted(&batch);
        let meta = batch.meta.clone();
        let entries: Vec<(Offset, crate::record::Record)> = batch
            .entries
            .into_iter()
            .filter(|(off, rec)| {
                if *off >= bound {
                    return true; // dirty tail untouched
                }
                if aborted_batch {
                    return false; // aborted data removed
                }
                match &rec.key {
                    None => true, // keyless records kept
                    Some(key) => {
                        if latest.get(key) != Some(off) {
                            return false; // superseded by a later record
                        }
                        if rec.is_tombstone() && opts.remove_tombstones {
                            return false;
                        }
                        true
                    }
                }
            })
            .collect();
        if !entries.is_empty() {
            out.push(StoredBatch { meta, entries });
        }
    }

    let records_after: usize =
        out.iter().filter(|b| !b.meta.is_control()).map(StoredBatch::len).sum();
    let bytes_after: usize = out.iter().map(StoredBatch::approximate_size).sum();
    log.replace_batches(out);
    let stats = CompactionStats { records_before, records_after, bytes_before, bytes_after };
    kobs::count("klog.compaction.passes", 1);
    kobs::count("klog.compaction.records_removed", (records_before - records_after) as u64);
    kobs::event!(
        log.max_timestamp(),
        "klog",
        "compaction",
        records_before = records_before,
        records_after = records_after,
        bytes_after = bytes_after,
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchMeta, ControlType};
    use crate::log::IsolationLevel;
    use crate::record::Record;

    fn kv(key: &str, val: &str, ts: i64) -> Record {
        Record::of_str(key, val, ts)
    }

    #[test]
    fn keeps_only_latest_per_key() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), vec![kv("a", "1", 0), kv("b", "1", 1)]).unwrap();
        log.append(BatchMeta::plain(), vec![kv("a", "2", 2)]).unwrap();
        log.append(BatchMeta::plain(), vec![kv("a", "3", 3), kv("b", "2", 4)]).unwrap();
        let stats = compact(&mut log, CompactionOptions::default());
        assert_eq!(stats.records_before, 5);
        assert_eq!(stats.records_after, 2);
        let f = log.fetch(0, 100, IsolationLevel::ReadUncommitted).unwrap();
        let vals: Vec<(Offset, &[u8])> =
            f.records().map(|(o, r)| (o, r.value.as_deref().unwrap())).collect();
        // Original offsets preserved.
        assert_eq!(vals, vec![(3, b"3".as_slice()), (4, b"2".as_slice())]);
    }

    #[test]
    fn dirty_tail_not_compacted() {
        let mut log = PartitionLog::new().with_managed_watermark();
        log.append(BatchMeta::plain(), vec![kv("a", "1", 0)]).unwrap();
        log.append(BatchMeta::plain(), vec![kv("a", "2", 1)]).unwrap();
        log.advance_high_watermark(1); // only offset 0 is clean
        compact(&mut log, CompactionOptions::default());
        // Both records survive: offset 0 is latest *in the clean region*,
        // offset 1 is dirty.
        assert_eq!(log.record_count(), 2);
    }

    #[test]
    fn open_transaction_region_not_compacted() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), vec![kv("a", "1", 0)]).unwrap();
        log.append(BatchMeta::transactional(1, 0, 0), vec![kv("a", "2", 1)]).unwrap();
        // Txn open ⇒ LSO = 1 ⇒ only offset 0 clean; nothing superseded.
        compact(&mut log, CompactionOptions::default());
        assert_eq!(log.record_count(), 2);
    }

    #[test]
    fn aborted_records_removed() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), vec![kv("a", "keep", 0)]).unwrap();
        log.append(BatchMeta::transactional(1, 0, 0), vec![kv("b", "gone", 1)]).unwrap();
        log.append_control(1, 0, ControlType::Abort, 2).unwrap();
        let stats = compact(&mut log, CompactionOptions::default());
        assert_eq!(stats.records_after, 1);
        let f = log.fetch(0, 100, IsolationLevel::ReadUncommitted).unwrap();
        assert_eq!(f.count(), 1);
        assert_eq!(f.records().next().unwrap().1.value.as_deref(), Some(b"keep".as_slice()));
    }

    #[test]
    fn tombstone_kept_by_default_removed_on_request() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), vec![kv("a", "1", 0)]).unwrap();
        log.append(BatchMeta::plain(), vec![Record::tombstone(Bytes::from_static(b"a"), 1)])
            .unwrap();
        let mut log2 = log.clone();
        compact(&mut log, CompactionOptions::default());
        assert_eq!(log.record_count(), 1, "tombstone retained");
        compact(&mut log2, CompactionOptions { remove_tombstones: true });
        assert_eq!(log2.record_count(), 0, "tombstone dropped");
    }

    #[test]
    fn keyless_records_survive() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), vec![Record::new(None, Some(Bytes::from_static(b"x")), 0)])
            .unwrap();
        log.append(BatchMeta::plain(), vec![Record::new(None, Some(Bytes::from_static(b"y")), 1)])
            .unwrap();
        compact(&mut log, CompactionOptions::default());
        assert_eq!(log.record_count(), 2);
    }

    #[test]
    fn committed_txn_data_compacts_normally() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::transactional(1, 0, 0), vec![kv("a", "1", 0)]).unwrap();
        log.append_control(1, 0, ControlType::Commit, 1).unwrap();
        log.append(BatchMeta::transactional(1, 0, 1), vec![kv("a", "2", 2)]).unwrap();
        log.append_control(1, 0, ControlType::Commit, 3).unwrap();
        let stats = compact(&mut log, CompactionOptions::default());
        assert_eq!(stats.records_after, 1);
        let f = log.fetch(0, 100, IsolationLevel::ReadCommitted).unwrap();
        assert_eq!(f.records().next().unwrap().1.value.as_deref(), Some(b"2".as_slice()));
    }

    #[test]
    fn restore_replay_after_compaction_yields_latest_state() {
        // The paper's claim: state stores are disposable because replaying
        // the compacted changelog reconstructs them exactly.
        let mut log = PartitionLog::new();
        for i in 0..100 {
            let key = format!("k{}", i % 10);
            log.append(BatchMeta::plain(), vec![kv(&key, &format!("v{i}"), i)]).unwrap();
        }
        let stats = compact(&mut log, CompactionOptions::default());
        assert_eq!(stats.records_after, 10);
        assert!(stats.reclaimed_fraction() > 0.8);
        // Replay: last value per key matches the uncompacted history.
        let f = log.fetch(log.log_start(), 1000, IsolationLevel::ReadUncommitted).unwrap();
        let mut state = HashMap::new();
        for (_, r) in f.records() {
            state.insert(r.key.clone().unwrap(), r.value.clone().unwrap());
        }
        for k in 0..10u32 {
            let expected = format!("v{}", 90 + k); // last write of k{k} was at i = 90+k
            assert_eq!(
                state[&Bytes::from(format!("k{k}").into_bytes())],
                Bytes::from(expected.into_bytes())
            );
        }
    }

    #[test]
    fn idempotent_dedup_still_works_after_compaction() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::idempotent(1, 0, 0), vec![kv("a", "1", 0)]).unwrap();
        log.append(BatchMeta::idempotent(1, 0, 1), vec![kv("a", "2", 1)]).unwrap();
        compact(&mut log, CompactionOptions::default());
        let retry = log.append(BatchMeta::idempotent(1, 0, 1), vec![kv("a", "2", 1)]).unwrap();
        assert!(retry.duplicate, "producer table survives compaction");
    }
}
