//! Error type for log operations.

use std::fmt;

/// Errors surfaced by partition-log operations.
///
/// These mirror the broker error codes a real Kafka client would see; the
/// simulated clients in `kbroker` react to them the same way (retry, bump
/// epoch, abort, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The batch's base sequence is neither a duplicate nor the next
    /// expected sequence — a gap means a prior batch was lost.
    OutOfOrderSequence {
        /// Producer whose sequence was out of order.
        producer_id: i64,
        /// Next sequence the log expected from this producer.
        expected: i64,
        /// Sequence the rejected batch actually carried.
        got: i64,
    },
    /// The producer's epoch is older than the latest known epoch for its id:
    /// the producer is a zombie and must not write (§4.2.1 fencing).
    ProducerFenced {
        /// Producer id that was fenced.
        producer_id: i64,
        /// Latest epoch the log has seen for this producer.
        current_epoch: i32,
        /// Stale epoch the rejected batch carried.
        got_epoch: i32,
    },
    /// A fetch or lookup addressed an offset beyond the log end or before
    /// the log start (e.g. truncated away by retention).
    OffsetOutOfRange {
        /// Offset the caller asked for.
        requested: i64,
        /// First retained offset.
        log_start: i64,
        /// Log-end offset (exclusive).
        log_end: i64,
    },
    /// A transactional operation referenced a producer id with no open
    /// transaction on this partition.
    NoOngoingTransaction {
        /// Producer id with no open transaction.
        producer_id: i64,
    },
    /// A non-transactional append from a producer with an open transaction,
    /// or a transactional append from a non-transactional producer.
    InvalidTxnState(String),
    /// Batch failed validation (empty, bad control payload, …).
    CorruptBatch(String),
    /// A disk-backend I/O operation failed (storage mirror or recovery).
    Io(String),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::OutOfOrderSequence { producer_id, expected, got } => write!(
                f,
                "out of order sequence for producer {producer_id}: expected {expected}, got {got}"
            ),
            LogError::ProducerFenced { producer_id, current_epoch, got_epoch } => write!(
                f,
                "producer {producer_id} fenced: current epoch {current_epoch}, got {got_epoch}"
            ),
            LogError::OffsetOutOfRange { requested, log_start, log_end } => {
                write!(f, "offset {requested} out of range [{log_start}, {log_end})")
            }
            LogError::NoOngoingTransaction { producer_id } => {
                write!(f, "no ongoing transaction for producer {producer_id}")
            }
            LogError::InvalidTxnState(msg) => write!(f, "invalid transaction state: {msg}"),
            LogError::CorruptBatch(msg) => write!(f, "corrupt batch: {msg}"),
            LogError::Io(msg) => write!(f, "storage i/o error: {msg}"),
        }
    }
}

impl std::error::Error for LogError {}
