//! # klog — Kafka-like partition-log substrate
//!
//! The paper's core architectural bet (§3, §4) is that *all* streaming data —
//! input topics, repartition topics, state-store changelogs, offset commits,
//! and transaction metadata — live in replicated, immutable, append-only
//! partition logs. This crate implements that log:
//!
//! * [`record::Record`] — timestamped key/value records,
//! * [`batch::StoredBatch`] — appended batches carrying producer id/epoch/
//!   sequence metadata for idempotence (§4.1) and transactional/control
//!   flags for transactions (§4.2),
//! * [`log::PartitionLog`] — the log itself: log-end offset, high watermark,
//!   last-stable-offset tracking, the aborted-transaction index used by
//!   read-committed fetches, and per-producer dedup state,
//! * [`compaction`] — key-based log compaction for changelog topics (§3.2),
//! * [`segment`] — segment bookkeeping, retention, and prefix truncation
//!   (used to purge consumed repartition-topic records, §3.2).
//!
//! `klog` is purely single-partition data structures with no threading and —
//! by default — no I/O; `kbroker` composes these into a replicated
//! multi-broker cluster. The optional [`storage`] disk backend mirrors a
//! log's mutations into real segment files for honest crash recovery.

#![deny(missing_docs)]

pub mod batch;
pub mod checks;
pub mod compaction;
pub mod error;
pub mod index;
pub mod log;
pub mod producer_state;
pub mod record;
pub mod segment;
pub mod storage;

pub use batch::{BatchMeta, ControlType, StoredBatch};
pub use error::LogError;
pub use log::{AbortedTxn, AppendOutcome, FetchResult, IsolationLevel, PartitionLog};
pub use producer_state::{ProducerStateTable, SequenceCheck};
pub use record::Record;
pub use storage::{DiskConfig, DiskLog, FsyncPolicy, RecoveredLog, StorageMode};

/// Offsets are dense, zero-based positions within one partition log.
pub type Offset = i64;

/// Producer ids are assigned by the (simulated) broker; `-1` means
/// "no producer id" (a non-idempotent append).
pub type ProducerId = i64;

/// Producer epochs distinguish lifetimes of the same transactional id.
pub type ProducerEpoch = i32;

/// The sentinel producer id for non-idempotent appends.
pub const NO_PRODUCER_ID: ProducerId = -1;

/// The sentinel sequence for non-idempotent appends.
pub const NO_SEQUENCE: i64 = -1;

/// The sentinel timestamp meaning "not set".
pub const NO_TIMESTAMP: i64 = -1;
