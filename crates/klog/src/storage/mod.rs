//! Pluggable storage backends for the partition log.
//!
//! The default backend keeps everything in memory (the original behaviour of
//! this reproduction); the [`disk`] backend mirrors every log mutation into
//! real segment files with offset/time indexes, producer-state snapshots,
//! and a `(log_start, high_watermark)` checkpoint — the durable substrate
//! the paper's recovery story (§2.3, §5) assumes. Crash recovery then means
//! what it means in Kafka: re-reading segment files, CRC-validating each
//! frame, truncating at the first torn write, and rebuilding producer state
//! from the latest snapshot plus a suffix scan.
//!
//! Determinism rules (the backend is used inside the deterministic
//! simulation):
//!
//! * no wall-clock reads — I/O *cost* is modeled from [`DiskConfig`] knobs
//!   and fed into kobs histograms / ktrace spans in virtual microseconds,
//! * directory entries are always iterated in sorted name order,
//! * file contents are a pure function of the appended batches, so two runs
//!   with the same seed produce byte-identical segment files.

pub mod disk;
pub mod format;

pub use disk::{DiskLog, RecoveredLog};
pub use format::{crc32, ProducerSnapshot};

use std::path::PathBuf;

/// Which storage backend a log (or a whole simulated cluster) uses.
#[derive(Debug, Clone, Default)]
pub enum StorageMode {
    /// Everything lives in memory; "crash" drops the struct (the seed
    /// behaviour of this repo).
    #[default]
    Memory,
    /// Mirror every mutation into segment files under the config's root
    /// directory; crashes recover from disk.
    Disk(DiskConfig),
}

impl StorageMode {
    /// True for the disk-backed mode.
    pub fn is_disk(&self) -> bool {
        matches!(self, StorageMode::Disk(_))
    }
}

/// When the disk backend calls `fsync` on the active segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Sync after every appended batch (slowest, max durability).
    Always,
    /// Sync when a segment rolls and on snapshot/checkpoint writes —
    /// Kafka's practical default (recovery re-validates the tail).
    #[default]
    OnRoll,
    /// Never sync explicitly; rely on the page cache (fastest).
    Never,
}

/// Tuning knobs for the disk backend. The `*_cost_us` fields are *modeled*
/// latencies: they never sleep, they only feed the `klog.disk.*` metric
/// family and the `fsync` ktrace spans, keeping simulated time deterministic
/// while still exposing an fsync/page-cache cost axis to experiments.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Directory holding this log's segment files (one directory per
    /// partition replica).
    pub dir: PathBuf,
    /// Records per segment before rolling to a new file. Mirrors the
    /// in-memory [`crate::segment::SEGMENT_ROLL_RECORDS`] by default.
    pub roll_records: usize,
    /// Bytes of log data between sparse offset/time index entries.
    pub index_interval_bytes: u64,
    /// Fsync policy for the active segment.
    pub fsync: FsyncPolicy,
    /// Modeled cost of one fsync, in microseconds.
    pub fsync_cost_us: i64,
    /// Modeled write cost per KiB appended, in microseconds.
    pub write_cost_us_per_kb: i64,
}

impl DiskConfig {
    /// A config rooted at `dir` with Kafka-flavoured defaults.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            roll_records: crate::segment::SEGMENT_ROLL_RECORDS,
            index_interval_bytes: 4096,
            fsync: FsyncPolicy::OnRoll,
            fsync_cost_us: 120,
            write_cost_us_per_kb: 3,
        }
    }

    /// Derive the per-replica config for `broker`/`topic`/`partition` under
    /// this config's root: `<root>/broker-<id>/<topic>-<partition>/`.
    pub fn for_replica(&self, broker: usize, topic: &str, partition: u32) -> Self {
        let mut cfg = self.clone();
        cfg.dir = self.dir.join(format!("broker-{broker}")).join(format!("{topic}-{partition}"));
        cfg
    }

    /// Override the segment-roll threshold (tests use tiny segments).
    pub fn with_roll_records(mut self, records: usize) -> Self {
        self.roll_records = records.max(1);
        self
    }

    /// Override the fsync policy.
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Override the modeled fsync cost in microseconds.
    pub fn with_fsync_cost_us(mut self, us: i64) -> Self {
        self.fsync_cost_us = us;
        self
    }
}
