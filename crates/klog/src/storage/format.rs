//! On-disk encoding for segment frames, producer snapshots, and checkpoints.
//!
//! Everything is little-endian and length-prefixed, with a CRC32 (IEEE) over
//! each payload so recovery can detect torn or corrupt writes and truncate
//! at the last valid frame — the same contract Kafka's log recovery relies
//! on. The codecs are hand-rolled (no external dependencies) and total: any
//! malformed input decodes to `None`, never a panic.

use crate::batch::{BatchMeta, ControlType, StoredBatch};
use crate::log::AbortedTxn;
use crate::producer_state::ProducerSnapshotEntry;
use crate::record::Record;
use crate::{Offset, NO_PRODUCER_ID, NO_SEQUENCE};
use bytes::Bytes;

/// Magic prefix of a producer-state snapshot file (`"KSN1"`).
pub const SNAPSHOT_MAGIC: u32 = 0x4B53_4E31;

/// Magic prefix of a checkpoint file (`"KCP1"`).
pub const CHECKPOINT_MAGIC: u32 = 0x4B43_5031;

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data` — the checksum framing every on-disk payload.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Little-endian write helpers
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_bytes(out: &mut Vec<u8>, v: Option<&Bytes>) {
    match v {
        None => put_i32(out, -1),
        Some(b) => {
            put_i32(out, i32::try_from(b.len()).unwrap_or(i32::MAX));
            out.extend_from_slice(b);
        }
    }
}

/// Cursor over a decoded payload; every read is bounds-checked.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes(s.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn i32(&mut self) -> Option<i32> {
        self.take(4).map(|s| i32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8).map(|s| i64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn opt_bytes(&mut self) -> Option<Option<Bytes>> {
        let len = self.i32()?;
        if len < 0 {
            return Some(None);
        }
        let s = self.take(len as usize)?;
        Some(Some(Bytes::copy_from_slice(s)))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Batch frames
// ---------------------------------------------------------------------------

const FLAG_TRANSACTIONAL: u8 = 1 << 0;
const FLAG_CONTROL: u8 = 1 << 1;
const FLAG_ABORT: u8 = 1 << 2;

/// Encode one stored batch as a frame payload (no length/CRC framing).
pub fn encode_batch(batch: &StoredBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + batch.approximate_size());
    put_i64(&mut out, batch.meta.producer_id);
    put_i32(&mut out, batch.meta.producer_epoch);
    put_i64(&mut out, batch.meta.base_sequence);
    let mut flags = 0u8;
    if batch.meta.transactional {
        flags |= FLAG_TRANSACTIONAL;
    }
    match batch.meta.control {
        Some(ControlType::Commit) => flags |= FLAG_CONTROL,
        Some(ControlType::Abort) => flags |= FLAG_CONTROL | FLAG_ABORT,
        None => {}
    }
    put_u8(&mut out, flags);
    put_u32(&mut out, u32::try_from(batch.entries.len()).unwrap_or(u32::MAX));
    for (offset, rec) in &batch.entries {
        put_i64(&mut out, *offset);
        put_i64(&mut out, rec.timestamp);
        put_opt_bytes(&mut out, rec.key.as_ref());
        put_opt_bytes(&mut out, rec.value.as_ref());
        put_u16(&mut out, u16::try_from(rec.headers.len()).unwrap_or(u16::MAX));
        for (name, value) in &rec.headers {
            put_u16(&mut out, u16::try_from(name.len()).unwrap_or(u16::MAX));
            out.extend_from_slice(name.as_bytes());
            put_u32(&mut out, u32::try_from(value.len()).unwrap_or(u32::MAX));
            out.extend_from_slice(value);
        }
    }
    out
}

/// Decode a frame payload back into a stored batch. `None` on any
/// malformation (bad lengths, trailing garbage, empty batch).
pub fn decode_batch(payload: &[u8]) -> Option<StoredBatch> {
    let mut r = Reader::new(payload);
    let producer_id = r.i64()?;
    let producer_epoch = r.i32()?;
    let base_sequence = r.i64()?;
    let flags = r.u8()?;
    let control = if flags & FLAG_CONTROL != 0 {
        Some(if flags & FLAG_ABORT != 0 { ControlType::Abort } else { ControlType::Commit })
    } else {
        None
    };
    let meta = BatchMeta {
        producer_id,
        producer_epoch,
        base_sequence,
        transactional: flags & FLAG_TRANSACTIONAL != 0,
        control,
    };
    let count = r.u32()? as usize;
    if count == 0 {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let offset = r.i64()?;
        let timestamp = r.i64()?;
        let key = r.opt_bytes()?;
        let value = r.opt_bytes()?;
        let n_headers = r.u16()? as usize;
        let mut headers = Vec::with_capacity(n_headers);
        for _ in 0..n_headers {
            let name_len = r.u16()? as usize;
            let name = String::from_utf8(r.take(name_len)?.to_vec()).ok()?;
            let value_len = r.u32()? as usize;
            let hval = Bytes::copy_from_slice(r.take(value_len)?);
            headers.push((name, hval));
        }
        entries.push((offset, Record { key, value, timestamp, headers }));
    }
    if !r.done() {
        return None;
    }
    Some(StoredBatch { meta, entries })
}

/// Frame a payload for appending to a segment file:
/// `[len: u32][crc32(payload): u32][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, u32::try_from(payload.len()).unwrap_or(u32::MAX));
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Read the next frame starting at `pos` in `buf`. Returns the validated
/// payload slice and the position just past the frame, or `None` when the
/// remainder is truncated or fails the CRC — the recovery cut point.
pub fn next_frame(buf: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let mut r = Reader::new(buf.get(pos..)?);
    let len = r.u32()? as usize;
    let crc = r.u32()?;
    let payload = r.take(len)?;
    if crc32(payload) != crc {
        return None;
    }
    Some((payload, pos + 8 + len))
}

// ---------------------------------------------------------------------------
// Producer-state snapshots
// ---------------------------------------------------------------------------

/// A decoded producer-state snapshot: the table entries and aborted-txn
/// index as of `snapshot_offset` (everything strictly below it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProducerSnapshot {
    /// All batches with last offset `< snapshot_offset` are reflected.
    pub snapshot_offset: Offset,
    /// Per-producer entries, sorted by producer id.
    pub entries: Vec<ProducerSnapshotEntry>,
    /// Aborted transactions whose marker is below `snapshot_offset`.
    pub aborted: Vec<AbortedTxn>,
}

/// Encode a producer-state snapshot file (magic + body + trailing CRC).
pub fn encode_snapshot(snapshot: &ProducerSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, SNAPSHOT_MAGIC);
    put_i64(&mut out, snapshot.snapshot_offset);
    put_u32(&mut out, u32::try_from(snapshot.entries.len()).unwrap_or(u32::MAX));
    for e in &snapshot.entries {
        put_i64(&mut out, e.producer_id);
        put_i32(&mut out, e.epoch);
        put_i64(&mut out, e.last_seq);
        match e.last_batch {
            None => put_u8(&mut out, 0),
            Some((base_seq, last_seq, base_off, last_off)) => {
                put_u8(&mut out, 1);
                put_i64(&mut out, base_seq);
                put_i64(&mut out, last_seq);
                put_i64(&mut out, base_off);
                put_i64(&mut out, last_off);
            }
        }
        match e.txn_first_offset {
            None => put_u8(&mut out, 0),
            Some(off) => {
                put_u8(&mut out, 1);
                put_i64(&mut out, off);
            }
        }
    }
    put_u32(&mut out, u32::try_from(snapshot.aborted.len()).unwrap_or(u32::MAX));
    for a in &snapshot.aborted {
        put_i64(&mut out, a.producer_id);
        put_i64(&mut out, a.first_offset);
        put_i64(&mut out, a.marker_offset);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decode a producer-state snapshot file; `None` on magic/CRC mismatch or
/// malformation.
pub fn decode_snapshot(buf: &[u8]) -> Option<ProducerSnapshot> {
    if buf.len() < 4 {
        return None;
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return None;
    }
    let mut r = Reader::new(body);
    if r.u32()? != SNAPSHOT_MAGIC {
        return None;
    }
    let snapshot_offset = r.i64()?;
    let n_entries = r.u32()? as usize;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let producer_id = r.i64()?;
        if producer_id == NO_PRODUCER_ID {
            return None;
        }
        let epoch = r.i32()?;
        let last_seq = r.i64()?;
        let last_batch =
            if r.u8()? != 0 { Some((r.i64()?, r.i64()?, r.i64()?, r.i64()?)) } else { None };
        let txn_first_offset = if r.u8()? != 0 { Some(r.i64()?) } else { None };
        entries.push(ProducerSnapshotEntry {
            producer_id,
            epoch,
            last_seq,
            last_batch,
            txn_first_offset,
        });
    }
    let n_aborted = r.u32()? as usize;
    let mut aborted = Vec::with_capacity(n_aborted);
    for _ in 0..n_aborted {
        aborted.push(AbortedTxn {
            producer_id: r.i64()?,
            first_offset: r.i64()?,
            marker_offset: r.i64()?,
        });
    }
    if !r.done() {
        return None;
    }
    Some(ProducerSnapshot { snapshot_offset, entries, aborted })
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// Encode the `(log_start, high_watermark)` checkpoint file.
pub fn encode_checkpoint(log_start: Offset, high_watermark: Offset) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    put_u32(&mut out, CHECKPOINT_MAGIC);
    put_i64(&mut out, log_start);
    put_i64(&mut out, high_watermark);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decode a checkpoint file into `(log_start, high_watermark)`.
pub fn decode_checkpoint(buf: &[u8]) -> Option<(Offset, Offset)> {
    if buf.len() != 24 {
        return None;
    }
    let (body, crc_bytes) = buf.split_at(20);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return None;
    }
    let mut r = Reader::new(body);
    if r.u32()? != CHECKPOINT_MAGIC {
        return None;
    }
    Some((r.i64()?, r.i64()?))
}

/// Sanity guard used by encoders: sequences must either be absent or
/// non-negative; used in debug assertions only.
#[allow(dead_code)]
fn valid_sequence(seq: i64) -> bool {
    seq >= 0 || seq == NO_SEQUENCE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchMeta;

    fn sample_batch() -> StoredBatch {
        StoredBatch {
            meta: BatchMeta::transactional(7, 2, 5),
            entries: vec![
                (
                    10,
                    Record::of_str("k1", "v1", 100)
                        .with_header("change", Bytes::from_static(b"new")),
                ),
                (11, Record::tombstone(Bytes::from_static(b"k2"), 101)),
                (12, Record::new(None, Some(Bytes::from_static(b"v3")), 102)),
            ],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is 0xCBF43926 (standard check value).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn batch_round_trips() {
        let b = sample_batch();
        let enc = encode_batch(&b);
        assert_eq!(decode_batch(&enc).expect("decodes"), b);
    }

    #[test]
    fn control_batch_round_trips() {
        let b = StoredBatch {
            meta: BatchMeta::control(3, 1, ControlType::Abort),
            entries: vec![(42, Record { key: None, value: None, timestamp: 9, headers: vec![] })],
        };
        let enc = encode_batch(&b);
        assert_eq!(decode_batch(&enc).expect("decodes"), b);
    }

    #[test]
    fn corrupt_payload_rejected() {
        let mut enc = encode_batch(&sample_batch());
        enc.truncate(enc.len() - 1);
        assert!(decode_batch(&enc).is_none(), "truncated payload must not decode");
        let mut garbage = encode_batch(&sample_batch());
        garbage.push(0xFF);
        assert!(decode_batch(&garbage).is_none(), "trailing garbage must not decode");
    }

    #[test]
    fn frame_round_trips_and_detects_corruption() {
        let payload = encode_batch(&sample_batch());
        let mut file = frame(&payload);
        let second = frame(&payload);
        file.extend_from_slice(&second);
        let (p1, next) = next_frame(&file, 0).expect("first frame");
        assert_eq!(p1, payload.as_slice());
        let (p2, end) = next_frame(&file, next).expect("second frame");
        assert_eq!(p2, payload.as_slice());
        assert_eq!(end, file.len());
        assert!(next_frame(&file, end).is_none(), "no frame past the end");
        // Flip one payload byte: the CRC must catch it.
        file[10] ^= 0x01;
        assert!(next_frame(&file, 0).is_none());
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = ProducerSnapshot {
            snapshot_offset: 99,
            entries: vec![
                ProducerSnapshotEntry {
                    producer_id: 1,
                    epoch: 0,
                    last_seq: 41,
                    last_batch: Some((40, 41, 90, 91)),
                    txn_first_offset: Some(90),
                },
                ProducerSnapshotEntry {
                    producer_id: 2,
                    epoch: 3,
                    last_seq: NO_SEQUENCE,
                    last_batch: None,
                    txn_first_offset: None,
                },
            ],
            aborted: vec![AbortedTxn { producer_id: 1, first_offset: 10, marker_offset: 20 }],
        };
        let enc = encode_snapshot(&snap);
        assert_eq!(decode_snapshot(&enc).expect("decodes"), snap);
    }

    #[test]
    fn snapshot_crc_guard() {
        let snap = ProducerSnapshot { snapshot_offset: 5, entries: vec![], aborted: vec![] };
        let mut enc = encode_snapshot(&snap);
        enc[4] ^= 0xFF;
        assert!(decode_snapshot(&enc).is_none());
    }

    #[test]
    fn checkpoint_round_trips() {
        let enc = encode_checkpoint(17, 40);
        assert_eq!(decode_checkpoint(&enc), Some((17, 40)));
        let mut bad = encode_checkpoint(17, 40);
        bad[5] ^= 0x10;
        assert_eq!(decode_checkpoint(&bad), None);
        assert_eq!(decode_checkpoint(&[]), None);
    }
}
