//! The disk backend: real segment files, sparse indexes, snapshots, and
//! CRC-validated crash recovery.
//!
//! Layout of one partition-replica directory:
//!
//! ```text
//! <dir>/
//!   00000000000000000000.log        segment: framed batches (see format.rs)
//!   00000000000000000000.index      sparse offset index (rel_offset, file_pos)
//!   00000000000000000000.timeindex  sparse time index (timestamp, offset)
//!   00000000000000004096.log        next segment, named by base offset
//!   ...
//!   checkpoint                      (log_start, high_watermark)
//!   producer.snapshot               producer table + aborted txns at offset S
//! ```
//!
//! Segment files are append-only; rolling starts a new file named by the
//! first offset it will contain. Recovery reads files in sorted name order,
//! validates every frame's CRC, truncates the log at the first corrupt or
//! torn frame, and discards any later segments — exactly Kafka's recovery
//! contract. All I/O latency is *modeled* (config knobs in virtual
//! microseconds), never measured, so simulation runs stay deterministic.

use super::format::{self, ProducerSnapshot};
use super::{DiskConfig, FsyncPolicy};
use crate::batch::StoredBatch;
use crate::error::LogError;
use crate::Offset;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Name of the checkpoint file inside a partition directory.
const CHECKPOINT_FILE: &str = "checkpoint";

/// Name of the producer-state snapshot file.
const SNAPSHOT_FILE: &str = "producer.snapshot";

fn io_err(context: &str, e: &std::io::Error) -> LogError {
    LogError::Io(format!("{context}: {e}"))
}

fn segment_name(base: Offset) -> String {
    format!("{base:020}.log")
}

fn stem(base: Offset) -> String {
    format!("{base:020}")
}

/// Everything recovered from a partition directory: the surviving batches in
/// offset order, the checkpointed bounds, the latest valid producer-state
/// snapshot, and a reopened [`DiskLog`] positioned for further appends.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The reopened backend, ready to mirror new mutations.
    pub disk: DiskLog,
    /// All CRC-valid batches, in offset order, up to the first corruption.
    pub batches: Vec<StoredBatch>,
    /// Checkpointed earliest addressable offset.
    pub log_start: Offset,
    /// Checkpointed high watermark (clamped to the recovered log end).
    pub high_watermark: Offset,
    /// Latest valid producer-state snapshot, if one was written.
    pub snapshot: Option<ProducerSnapshot>,
}

/// Disk mirror of one partition log. Owned by (at most one) in-memory
/// [`crate::PartitionLog`]; cloning a log never clones its disk attachment.
#[derive(Debug)]
pub struct DiskLog {
    cfg: DiskConfig,
    /// Base offset of the active (last) segment; `None` before any append.
    active_base: Option<Offset>,
    active_file: Option<File>,
    active_records: usize,
    active_bytes: u64,
    /// Bytes appended since the last sparse index entry.
    bytes_since_index: u64,
    /// Max timestamp indexed in the active segment's time index.
    active_max_ts: i64,
    /// Last checkpoint written, to skip redundant rewrites.
    last_checkpoint: Option<(Offset, Offset)>,
}

impl DiskLog {
    /// Create a fresh, empty disk log at the config's directory, removing
    /// any files left over from a previous incarnation.
    pub fn open_clean(cfg: DiskConfig) -> Result<Self, LogError> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err("create dir", &e))?;
        for name in sorted_file_names(&cfg.dir)? {
            fs::remove_file(cfg.dir.join(&name)).map_err(|e| io_err("clean stale file", &e))?;
        }
        Ok(Self {
            cfg,
            active_base: None,
            active_file: None,
            active_records: 0,
            active_bytes: 0,
            bytes_since_index: 0,
            active_max_ts: i64::MIN,
            last_checkpoint: None,
        })
    }

    /// The directory this log writes to.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// The config this log was opened with.
    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    fn path_for(&self, name: &str) -> PathBuf {
        self.cfg.dir.join(name)
    }

    // ------------------------------------------------------------------
    // Append path
    // ------------------------------------------------------------------

    /// Mirror one appended batch. Returns `true` when the append rolled a
    /// new segment (the caller then writes a producer-state snapshot).
    pub fn append_batch(&mut self, batch: &StoredBatch) -> Result<bool, LogError> {
        let ts_ms = batch.max_timestamp().max(0);
        let mut rolled = false;
        if self.active_base.is_some() && self.active_records >= self.cfg.roll_records {
            // Roll: sync the finished segment per policy, then start a new
            // file named by this batch's base offset.
            if self.cfg.fsync == FsyncPolicy::OnRoll {
                if let Some(f) = self.active_file.as_ref() {
                    let bytes = self.active_bytes;
                    self.fsync(f, ts_ms, bytes);
                }
            }
            kobs::count("klog.disk.segment_rolls", 1);
            self.active_base = None;
            self.active_file = None;
            rolled = true;
        }
        if self.active_base.is_none() {
            self.open_segment(batch.base_offset())?;
        }
        let payload = format::encode_batch(batch);
        let frame = format::frame(&payload);
        let file_pos = self.active_bytes;
        let file = self.active_file.as_mut().expect("segment opened above");
        file.write_all(&frame).map_err(|e| io_err("append frame", &e))?;
        self.active_bytes += frame.len() as u64;
        self.active_records += batch.len();
        self.bytes_since_index += frame.len() as u64;
        let base = self.active_base.expect("segment opened above");
        // Sparse offset index: one entry per index_interval_bytes of data.
        if self.bytes_since_index >= self.cfg.index_interval_bytes {
            self.bytes_since_index = 0;
            let rel = u32::try_from(batch.base_offset() - base).unwrap_or(u32::MAX);
            let pos = u32::try_from(file_pos).unwrap_or(u32::MAX);
            let mut entry = Vec::with_capacity(8);
            entry.extend_from_slice(&rel.to_le_bytes());
            entry.extend_from_slice(&pos.to_le_bytes());
            append_to(&self.path_for(&format!("{}.index", stem(base))), &entry)?;
        }
        // Sparse time index: one entry per advance of the segment max ts.
        let max_ts = batch.max_timestamp();
        if max_ts > self.active_max_ts {
            self.active_max_ts = max_ts;
            let mut entry = Vec::with_capacity(16);
            entry.extend_from_slice(&max_ts.to_le_bytes());
            entry.extend_from_slice(&batch.base_offset().to_le_bytes());
            append_to(&self.path_for(&format!("{}.timeindex", stem(base))), &entry)?;
        }
        kobs::count("klog.disk.appends", 1);
        kobs::count("klog.disk.append_bytes", frame.len() as u64);
        // Modeled page-cache write cost (virtual µs; fed to the histogram,
        // never slept).
        let write_us = ((frame.len() as i64 * self.cfg.write_cost_us_per_kb) + 1023) / 1024;
        let write_us = write_us.max(1);
        kobs::observe("klog.disk.write_us", write_us);
        if self.cfg.fsync == FsyncPolicy::Always {
            let bytes = frame.len() as u64;
            if let Some(f) = self.active_file.as_ref() {
                self.fsync(f, ts_ms, bytes);
            }
        }
        Ok(rolled)
    }

    fn open_segment(&mut self, base: Offset) -> Result<(), LogError> {
        let path = self.path_for(&segment_name(base));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open segment", &e))?;
        self.active_base = Some(base);
        self.active_file = Some(file);
        self.active_records = 0;
        self.active_bytes = 0;
        self.bytes_since_index = 0;
        self.active_max_ts = i64::MIN;
        Ok(())
    }

    /// Sync `file` and account the modeled cost: counter, histogram, and —
    /// when inside a traced lifecycle — an `fsync` child span whose duration
    /// is the modeled cost in virtual microseconds.
    fn fsync(&self, file: &File, ts_ms: i64, bytes: u64) {
        let _ = file.sync_all();
        kobs::count("klog.disk.fsyncs", 1);
        kobs::observe("klog.disk.fsync_us", self.cfg.fsync_cost_us);
        if kobs::ktrace::in_span() {
            let start_us = ts_ms.max(0) * 1000;
            let cost = self.cfg.fsync_cost_us;
            let h = kobs::ktrace::start_span(
                start_us,
                "klog",
                None,
                kobs::ktrace::Parent::Current,
                "fsync",
                || vec![("bytes", kobs::trace::FieldValue::from(bytes as i64))],
            );
            kobs::ktrace::finish_span(h, start_us + cost);
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint and snapshot
    // ------------------------------------------------------------------

    /// Persist `(log_start, high_watermark)`. Atomic (write + rename), and
    /// skipped when the values are unchanged since the last write.
    pub fn write_checkpoint(
        &mut self,
        log_start: Offset,
        high_watermark: Offset,
    ) -> Result<(), LogError> {
        if self.last_checkpoint == Some((log_start, high_watermark)) {
            return Ok(());
        }
        write_atomic(
            &self.path_for(CHECKPOINT_FILE),
            &format::encode_checkpoint(log_start, high_watermark),
        )?;
        self.last_checkpoint = Some((log_start, high_watermark));
        Ok(())
    }

    /// Persist a producer-state snapshot (atomically).
    pub fn write_snapshot(&mut self, snapshot: &ProducerSnapshot) -> Result<(), LogError> {
        write_atomic(&self.path_for(SNAPSHOT_FILE), &format::encode_snapshot(snapshot))?;
        kobs::count("klog.disk.snapshot_writes", 1);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Truncation and rewrite
    // ------------------------------------------------------------------

    /// Mirror a prefix truncation: delete whole segment files entirely below
    /// `new_start`, rewrite the (at most one) straddling head segment.
    pub fn truncate_prefix(&mut self, new_start: Offset) -> Result<(), LogError> {
        let bases = self.segment_bases()?;
        if bases.is_empty() {
            return Ok(());
        }
        // A file can be dropped whole when the *next* file's base is at or
        // below `new_start` (offsets are strictly increasing across files).
        let mut retained: Vec<Offset> = Vec::new();
        for (i, &base) in bases.iter().enumerate() {
            let droppable = bases.get(i + 1).is_some_and(|&next| next <= new_start);
            if droppable {
                self.remove_segment(base)?;
            } else {
                retained.push(base);
            }
        }
        // Trim the new head file if it straddles the cut.
        if let Some(&head) = retained.first() {
            if head < new_start {
                let (batches, _, _) = read_segment(&self.path_for(&segment_name(head)))?;
                let keep: Vec<StoredBatch> =
                    batches.into_iter().filter(|b| b.last_offset() >= new_start).collect();
                self.rewrite_segment(head, &keep)?;
            }
        }
        self.reopen_tail()?;
        Ok(())
    }

    /// Mirror a suffix truncation: drop every batch with an offset `>= to`.
    pub fn truncate_suffix(&mut self, to: Offset) -> Result<(), LogError> {
        for base in self.segment_bases()? {
            if base >= to {
                self.remove_segment(base)?;
                continue;
            }
            let path = self.path_for(&segment_name(base));
            let (batches, _, _) = read_segment(&path)?;
            if batches.iter().any(|b| b.last_offset() >= to) {
                let keep: Vec<StoredBatch> =
                    batches.into_iter().filter(|b| b.last_offset() < to).collect();
                self.rewrite_segment(base, &keep)?;
            }
        }
        self.reopen_tail()?;
        Ok(())
    }

    /// Replace the entire on-disk contents with `batches` (compaction, or a
    /// full resync from the leader). Indexes and segment boundaries are
    /// regenerated.
    pub fn rewrite_all<'a>(
        &mut self,
        batches: impl IntoIterator<Item = &'a StoredBatch>,
    ) -> Result<(), LogError> {
        for base in self.segment_bases()? {
            self.remove_segment(base)?;
        }
        self.active_base = None;
        self.active_file = None;
        self.active_records = 0;
        self.active_bytes = 0;
        kobs::count("klog.disk.truncate_rewrites", 1);
        for b in batches {
            self.append_batch(b)?;
        }
        Ok(())
    }

    /// Rewrite one segment file (and regenerate its indexes) to contain
    /// exactly `keep`; removes the file when `keep` is empty.
    fn rewrite_segment(&mut self, base: Offset, keep: &[StoredBatch]) -> Result<(), LogError> {
        kobs::count("klog.disk.truncate_rewrites", 1);
        self.remove_segment(base)?;
        if keep.is_empty() {
            return Ok(());
        }
        let mut data = Vec::new();
        for b in keep {
            data.extend_from_slice(&format::frame(&format::encode_batch(b)));
        }
        write_atomic(&self.path_for(&segment_name(base)), &data)
    }

    fn remove_segment(&mut self, base: Offset) -> Result<(), LogError> {
        if self.active_base == Some(base) {
            self.active_base = None;
            self.active_file = None;
        }
        for ext in ["log", "index", "timeindex"] {
            let path = self.path_for(&format!("{}.{ext}", stem(base)));
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err("remove segment", &e)),
            }
        }
        Ok(())
    }

    /// Point the append state at the last remaining segment file (after a
    /// truncation), re-reading it to recover record/byte counters.
    fn reopen_tail(&mut self) -> Result<(), LogError> {
        self.active_base = None;
        self.active_file = None;
        self.active_records = 0;
        self.active_bytes = 0;
        self.bytes_since_index = 0;
        self.active_max_ts = i64::MIN;
        let Some(&last) = self.segment_bases()?.last() else {
            return Ok(());
        };
        let path = self.path_for(&segment_name(last));
        let (batches, valid_bytes, _) = read_segment(&path)?;
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err("reopen segment", &e))?;
        self.active_base = Some(last);
        self.active_file = Some(file);
        self.active_records = batches.iter().map(StoredBatch::len).sum();
        self.active_bytes = valid_bytes;
        self.active_max_ts =
            batches.iter().map(StoredBatch::max_timestamp).max().unwrap_or(i64::MIN);
        Ok(())
    }

    /// Sorted base offsets of all segment files in the directory.
    fn segment_bases(&self) -> Result<Vec<Offset>, LogError> {
        segment_bases_in(&self.cfg.dir)
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    /// Reopen a partition directory after a crash: read segment files in
    /// name order, CRC-validate every frame, truncate the log at the first
    /// corruption (later segments are discarded), and load the checkpoint
    /// and the latest valid producer snapshot.
    pub fn recover(cfg: DiskConfig) -> Result<RecoveredLog, LogError> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err("create dir", &e))?;
        let bases = segment_bases_in(&cfg.dir)?;
        let mut batches: Vec<StoredBatch> = Vec::new();
        let mut recovered_bytes = 0u64;
        let mut cut = false;
        let mut dead: Vec<Offset> = Vec::new();
        for &base in &bases {
            if cut {
                dead.push(base);
                continue;
            }
            let path = cfg.dir.join(segment_name(base));
            let (mut segment_batches, valid_bytes, corrupt) = read_segment(&path)?;
            // Offsets must keep increasing across the whole log; a violation
            // means the tail predates an incomplete truncation — cut there.
            let prev_last = batches.last().map(StoredBatch::last_offset);
            if let Some(prev) = prev_last {
                if segment_batches.first().is_some_and(|b| b.base_offset() <= prev) {
                    dead.push(base);
                    cut = true;
                    continue;
                }
            }
            recovered_bytes += valid_bytes;
            if corrupt {
                // Truncate the torn tail in place and stop: nothing after a
                // corrupt frame is trustworthy.
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err("truncate corrupt segment", &e))?;
                f.set_len(valid_bytes).map_err(|e| io_err("truncate corrupt segment", &e))?;
                cut = true;
            }
            batches.append(&mut segment_batches);
        }
        let mut disk = Self {
            cfg,
            active_base: None,
            active_file: None,
            active_records: 0,
            active_bytes: 0,
            bytes_since_index: 0,
            active_max_ts: i64::MIN,
            last_checkpoint: None,
        };
        for base in dead {
            disk.remove_segment(base)?;
        }
        disk.reopen_tail()?;
        let checkpoint = fs::read(disk.path_for(CHECKPOINT_FILE))
            .ok()
            .and_then(|buf| format::decode_checkpoint(&buf));
        let snapshot = fs::read(disk.path_for(SNAPSHOT_FILE))
            .ok()
            .and_then(|buf| format::decode_snapshot(&buf));
        let log_end = batches.last().map_or(0, |b| b.last_offset() + 1);
        let (ckpt_start, ckpt_hw) = checkpoint.unwrap_or((0, 0));
        let log_start = ckpt_start.max(batches.first().map_or(0, StoredBatch::base_offset)).max(0);
        let high_watermark = ckpt_hw.clamp(log_start.min(log_end), log_end.max(log_start));
        // A snapshot "from the future" (offset beyond the recovered end) can
        // only happen after an untracked suffix loss; it must not be used.
        let snapshot = snapshot.filter(|s| s.snapshot_offset <= log_end.max(log_start));
        disk.last_checkpoint = None;
        kobs::count("klog.disk.recoveries", 1);
        kobs::count("klog.disk.recovered_batches", batches.len() as u64);
        kobs::count("klog.disk.recovered_bytes", recovered_bytes);
        Ok(RecoveredLog { disk, batches, log_start, high_watermark, snapshot })
    }
}

/// Read one segment file: all CRC-valid batches, the byte length of the
/// valid prefix, and whether a corrupt/torn tail was detected.
fn read_segment(path: &Path) -> Result<(Vec<StoredBatch>, u64, bool), LogError> {
    let buf = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0, false)),
        Err(e) => return Err(io_err("read segment", &e)),
    };
    let mut batches = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let Some((payload, next)) = format::next_frame(&buf, pos) else {
            return Ok((batches, pos as u64, true));
        };
        let Some(batch) = format::decode_batch(payload) else {
            return Ok((batches, pos as u64, true));
        };
        // Within a file, offsets must be strictly increasing too.
        if batches
            .last()
            .is_some_and(|prev: &StoredBatch| batch.base_offset() <= prev.last_offset())
        {
            return Ok((batches, pos as u64, true));
        }
        batches.push(batch);
        pos = next;
    }
    Ok((batches, pos as u64, false))
}

/// Sorted names of all regular files in `dir` (empty when the directory does
/// not exist). Sorting makes directory iteration deterministic everywhere.
fn sorted_file_names(dir: &Path) -> Result<Vec<String>, LogError> {
    let rd = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err("read dir", &e)),
    };
    let mut names: Vec<String> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| io_err("read dir entry", &e))?;
        if entry.file_type().map_err(|e| io_err("file type", &e))?.is_file() {
            if let Ok(name) = entry.file_name().into_string() {
                names.push(name);
            }
        }
    }
    names.sort_unstable();
    Ok(names)
}

/// Sorted base offsets of the `*.log` segment files in `dir`.
fn segment_bases_in(dir: &Path) -> Result<Vec<Offset>, LogError> {
    let mut bases: Vec<Offset> = sorted_file_names(dir)?
        .into_iter()
        .filter_map(|n| n.strip_suffix(".log").and_then(|s| s.parse::<Offset>().ok()))
        .collect();
    bases.sort_unstable();
    Ok(bases)
}

/// Append raw bytes to a (possibly new) file.
fn append_to(path: &Path, bytes: &[u8]) -> Result<(), LogError> {
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| io_err("open index", &e))?;
    f.write_all(bytes).map_err(|e| io_err("append index", &e))
}

/// Write a file atomically: temp file in the same directory, then rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), LogError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes).map_err(|e| io_err("write temp", &e))?;
    fs::rename(&tmp, path).map_err(|e| io_err("rename temp", &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchMeta, ControlType};
    use crate::record::Record;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn test_dir(tag: &str) -> PathBuf {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("klog-disk-test-{}-{tag}-{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn batch(base: Offset, n: usize, ts: i64) -> StoredBatch {
        StoredBatch {
            meta: BatchMeta::plain(),
            entries: (0..n)
                .map(|i| (base + i as i64, Record::of_str("k", &format!("v{i}"), ts + i as i64)))
                .collect(),
        }
    }

    #[test]
    fn append_and_recover_round_trips() {
        let dir = test_dir("roundtrip");
        let mut d = DiskLog::open_clean(DiskConfig::at(&dir)).unwrap();
        let b0 = batch(0, 3, 10);
        let b1 = batch(3, 2, 20);
        d.append_batch(&b0).unwrap();
        d.append_batch(&b1).unwrap();
        d.write_checkpoint(0, 5).unwrap();
        drop(d);
        let rec = DiskLog::recover(DiskConfig::at(&dir)).unwrap();
        assert_eq!(rec.batches, vec![b0, b1]);
        assert_eq!(rec.log_start, 0);
        assert_eq!(rec.high_watermark, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rolls_into_new_segment_files() {
        let dir = test_dir("roll");
        let cfg = DiskConfig::at(&dir).with_roll_records(4);
        let mut d = DiskLog::open_clean(cfg.clone()).unwrap();
        let mut rolls = 0;
        for i in 0..6 {
            if d.append_batch(&batch(i * 2, 2, i * 10)).unwrap() {
                rolls += 1;
            }
        }
        assert!(rolls >= 2, "6 two-record batches at roll=4 must roll");
        let bases = segment_bases_in(&dir).unwrap();
        assert_eq!(bases.len(), rolls + 1);
        assert_eq!(bases[0], 0);
        // Recovery stitches all segments back together in order.
        let rec = DiskLog::recover(cfg).unwrap();
        assert_eq!(rec.batches.len(), 6);
        assert_eq!(rec.batches.last().unwrap().last_offset(), 11);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_truncates_at_corrupt_frame_and_drops_later_segments() {
        let dir = test_dir("corrupt");
        // roll=4 with 2-record batches → two frames per segment file.
        let cfg = DiskConfig::at(&dir).with_roll_records(4);
        let mut d = DiskLog::open_clean(cfg.clone()).unwrap();
        for i in 0..4 {
            d.append_batch(&batch(i * 2, 2, 0)).unwrap();
        }
        drop(d);
        let bases = segment_bases_in(&dir).unwrap();
        assert!(bases.len() >= 2);
        // Corrupt a byte in the middle of the FIRST segment's second frame.
        let first = dir.join(segment_name(bases[0]));
        let mut buf = fs::read(&first).unwrap();
        let (_, after_first) = format::next_frame(&buf, 0).expect("frame 0");
        buf[after_first + 12] ^= 0xFF;
        fs::write(&first, &buf).unwrap();
        let rec = DiskLog::recover(cfg.clone()).unwrap();
        assert_eq!(rec.batches.len(), 1, "only the first valid frame survives");
        assert_eq!(rec.batches[0].last_offset(), 1);
        // Later segment files are gone; the log is appendable again.
        assert_eq!(segment_bases_in(&dir).unwrap(), vec![bases[0]]);
        let mut d = rec.disk;
        d.append_batch(&batch(2, 1, 5)).unwrap();
        let rec2 = DiskLog::recover(cfg).unwrap();
        assert_eq!(rec2.batches.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_prefix_drops_whole_files_and_trims_head() {
        let dir = test_dir("prefix");
        let cfg = DiskConfig::at(&dir).with_roll_records(2);
        let mut d = DiskLog::open_clean(cfg.clone()).unwrap();
        for i in 0..4 {
            d.append_batch(&batch(i * 2, 2, 0)).unwrap();
        }
        assert!(segment_bases_in(&dir).unwrap().len() >= 2);
        d.truncate_prefix(5).unwrap();
        drop(d);
        let rec = DiskLog::recover(cfg).unwrap();
        // Batches entirely below 5 are gone; the straddling batch (4..=5)
        // survives (batch granularity, like the in-memory list).
        assert_eq!(rec.batches.first().unwrap().base_offset(), 4);
        assert_eq!(rec.batches.last().unwrap().last_offset(), 7);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_suffix_rewrites_tail_and_stays_appendable() {
        let dir = test_dir("suffix");
        let cfg = DiskConfig::at(&dir).with_roll_records(2);
        let mut d = DiskLog::open_clean(cfg.clone()).unwrap();
        for i in 0..4 {
            d.append_batch(&batch(i * 2, 2, 0)).unwrap();
        }
        d.truncate_suffix(3).unwrap();
        // Batch 2..=3 straddles 3 → dropped whole (batch granularity).
        d.append_batch(&batch(2, 1, 9)).unwrap();
        drop(d);
        let rec = DiskLog::recover(cfg).unwrap();
        let offsets: Vec<Offset> = rec.batches.iter().map(StoredBatch::last_offset).collect();
        assert_eq!(offsets, vec![1, 2]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_all_replaces_contents() {
        let dir = test_dir("rewrite");
        let cfg = DiskConfig::at(&dir);
        let mut d = DiskLog::open_clean(cfg.clone()).unwrap();
        for i in 0..3 {
            d.append_batch(&batch(i * 2, 2, 0)).unwrap();
        }
        // Compaction output: only the surviving middle batch.
        let survivor = batch(2, 2, 0);
        d.rewrite_all([&survivor]).unwrap();
        drop(d);
        let rec = DiskLog::recover(cfg).unwrap();
        assert_eq!(rec.batches, vec![survivor]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_persists_and_survives_recovery() {
        let dir = test_dir("snapshot");
        let cfg = DiskConfig::at(&dir);
        let mut d = DiskLog::open_clean(cfg.clone()).unwrap();
        let b = StoredBatch {
            meta: BatchMeta::transactional(7, 0, 0),
            entries: vec![(0, Record::of_str("k", "v", 1))],
        };
        d.append_batch(&b).unwrap();
        let snap = ProducerSnapshot { snapshot_offset: 1, entries: vec![], aborted: vec![] };
        d.write_snapshot(&snap).unwrap();
        drop(d);
        let rec = DiskLog::recover(cfg).unwrap();
        assert_eq!(rec.snapshot, Some(snap));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_snapshot_is_discarded() {
        let dir = test_dir("futsnap");
        let cfg = DiskConfig::at(&dir);
        let mut d = DiskLog::open_clean(cfg.clone()).unwrap();
        d.append_batch(&batch(0, 1, 0)).unwrap();
        d.write_snapshot(&ProducerSnapshot {
            snapshot_offset: 99,
            entries: vec![],
            aborted: vec![],
        })
        .unwrap();
        drop(d);
        let rec = DiskLog::recover(cfg).unwrap();
        assert_eq!(rec.snapshot, None, "snapshot beyond the log end is unusable");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn control_batches_round_trip_through_disk() {
        let dir = test_dir("control");
        let cfg = DiskConfig::at(&dir);
        let mut d = DiskLog::open_clean(cfg.clone()).unwrap();
        let data = StoredBatch {
            meta: BatchMeta::transactional(3, 0, 0),
            entries: vec![(0, Record::of_str("k", "v", 1))],
        };
        let marker = StoredBatch {
            meta: BatchMeta::control(3, 0, ControlType::Abort),
            entries: vec![(1, Record { key: None, value: None, timestamp: 2, headers: vec![] })],
        };
        d.append_batch(&data).unwrap();
        d.append_batch(&marker).unwrap();
        drop(d);
        let rec = DiskLog::recover(cfg).unwrap();
        assert_eq!(rec.batches, vec![data, marker]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_from_empty_dir_is_a_fresh_log() {
        let dir = test_dir("empty");
        let rec = DiskLog::recover(DiskConfig::at(&dir)).unwrap();
        assert!(rec.batches.is_empty());
        assert_eq!(rec.log_start, 0);
        assert_eq!(rec.high_watermark, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
