//! Timestamped key/value records (§3.1).
//!
//! Records are key-value pairs with an embedded event-time timestamp set by
//! the producer; the log assigns each a dense offset at append time. Offset
//! order need not match timestamp order — handling that gap is the paper's
//! "completeness" problem (§2.2, §5).

use bytes::Bytes;

/// One streaming record as stored in a partition log.
///
/// * `key` — optional partitioning/compaction key.
/// * `value` — `None` encodes a *tombstone*: in a compacted changelog topic
///   it deletes the key (§3.2).
/// * `timestamp` — event time in ms ([`crate::NO_TIMESTAMP`] if unset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Optional record key (drives partitioning and compaction).
    pub key: Option<Bytes>,
    /// Optional value; `None` is a tombstone for compacted topics.
    pub value: Option<Bytes>,
    /// Event-time timestamp in milliseconds ([`crate::NO_TIMESTAMP`] if unset).
    pub timestamp: i64,
    /// Application headers (used by the streams layer to carry revision
    /// metadata such as `Change<V>` old/new flags).
    pub headers: Vec<(String, Bytes)>,
}

impl Record {
    /// A record with key, value and timestamp and no headers.
    pub fn new(
        key: impl Into<Option<Bytes>>,
        value: impl Into<Option<Bytes>>,
        timestamp: i64,
    ) -> Self {
        Self { key: key.into(), value: value.into(), timestamp, headers: Vec::new() }
    }

    /// Convenience constructor from UTF-8 string slices.
    pub fn of_str(key: &str, value: &str, timestamp: i64) -> Self {
        Self::new(
            Some(Bytes::copy_from_slice(key.as_bytes())),
            Some(Bytes::copy_from_slice(value.as_bytes())),
            timestamp,
        )
    }

    /// A tombstone (null-value) record for `key`.
    pub fn tombstone(key: Bytes, timestamp: i64) -> Self {
        Self { key: Some(key), value: None, timestamp, headers: Vec::new() }
    }

    /// Whether this record is a tombstone (null value).
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }

    /// Attach a header, builder-style.
    pub fn with_header(mut self, name: &str, value: Bytes) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }

    /// Look up the first header with `name`.
    pub fn header(&self, name: &str) -> Option<&Bytes> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Approximate in-memory size in bytes, used by retention policies and
    /// the benchmark harness's I/O accounting.
    pub fn approximate_size(&self) -> usize {
        let key_len = self.key.as_ref().map_or(0, Bytes::len);
        let val_len = self.value.as_ref().map_or(0, Bytes::len);
        let hdr_len: usize = self.headers.iter().map(|(n, v)| n.len() + v.len()).sum();
        // 8 bytes timestamp + 2 length prefixes.
        key_len + val_len + hdr_len + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_str_round_trip() {
        let r = Record::of_str("k", "v", 42);
        assert_eq!(r.key.as_deref(), Some(b"k".as_slice()));
        assert_eq!(r.value.as_deref(), Some(b"v".as_slice()));
        assert_eq!(r.timestamp, 42);
        assert!(!r.is_tombstone());
    }

    #[test]
    fn tombstone_has_no_value() {
        let r = Record::tombstone(Bytes::from_static(b"k"), 1);
        assert!(r.is_tombstone());
        assert_eq!(r.key.as_deref(), Some(b"k".as_slice()));
    }

    #[test]
    fn headers_lookup() {
        let r = Record::of_str("k", "v", 0)
            .with_header("change", Bytes::from_static(b"new"))
            .with_header("other", Bytes::from_static(b"x"));
        assert_eq!(r.header("change").map(AsRef::as_ref), Some(b"new".as_slice()));
        assert!(r.header("missing").is_none());
    }

    #[test]
    fn approximate_size_counts_parts() {
        let small = Record::of_str("k", "v", 0).approximate_size();
        let big = Record::of_str("key-longer", "value-longer", 0).approximate_size();
        assert!(big > small);
    }

    #[test]
    fn keyless_record_allowed() {
        let r = Record::new(None, Some(Bytes::from_static(b"v")), 5);
        assert!(r.key.is_none());
        assert!(!r.is_tombstone());
    }
}
