//! Per-partition producer state: the broker-side sequence cache that makes
//! producer retries idempotent (§4.1).
//!
//! For each producer id the partition leader remembers the latest epoch and
//! the last appended sequence number. An incoming batch is:
//!
//! * a **duplicate** if its entire sequence range was already appended —
//!   the broker acks it without re-appending (this is what absorbs retries
//!   after lost acks),
//! * **in order** if its base sequence is exactly `last + 1`,
//! * **out of order** otherwise (a gap ⇒ data loss ⇒ reject).
//!
//! The state is rebuilt from the log itself when a new leader takes over
//! (§4.1's "re-populate its sequence number cache by looking at the local
//! logs"), which [`ProducerStateTable::rebuild_from`] implements.

use crate::batch::StoredBatch;
use crate::error::LogError;
use crate::{Offset, ProducerEpoch, ProducerId, NO_SEQUENCE};
use std::collections::HashMap;

/// Outcome of validating an incoming batch's sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequenceCheck {
    /// First batch from this producer or exactly the next sequence: append.
    InOrder,
    /// The whole batch was appended before; return the cached offset range
    /// instead of appending again.
    Duplicate {
        /// Base offset of the previously appended identical batch.
        base_offset: Offset,
        /// Last offset of the previously appended identical batch.
        last_offset: Offset,
    },
}

#[derive(Debug, Clone)]
struct ProducerEntry {
    epoch: ProducerEpoch,
    /// Last appended sequence; `NO_SEQUENCE` right after an epoch bump.
    last_seq: i64,
    /// Offset range of the most recent appended batch, kept so duplicate
    /// retries can be acked with the original offsets.
    last_batch: Option<(i64, i64, Offset, Offset)>, // (base_seq, last_seq, base_off, last_off)
    /// First offset of this producer's current open transaction on this
    /// partition, if any. Drives the last-stable-offset (§4.2.3).
    txn_first_offset: Option<Offset>,
}

/// One producer's state as serialized into an on-disk snapshot — the public
/// mirror of the internal table entry, keyed by producer id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerSnapshotEntry {
    /// The producer id this entry belongs to.
    pub producer_id: ProducerId,
    /// Latest known epoch.
    pub epoch: ProducerEpoch,
    /// Last appended sequence at that epoch ([`NO_SEQUENCE`] if none).
    pub last_seq: i64,
    /// `(base_seq, last_seq, base_offset, last_offset)` of the most recent
    /// batch, kept so duplicate retries ack with original offsets.
    pub last_batch: Option<(i64, i64, Offset, Offset)>,
    /// First offset of the producer's open transaction, if any.
    pub txn_first_offset: Option<Offset>,
}

/// The per-partition table of producer states.
#[derive(Debug, Clone, Default)]
pub struct ProducerStateTable {
    entries: HashMap<ProducerId, ProducerEntry>,
}

impl ProducerStateTable {
    /// An empty table (no producers seen yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Validate an idempotent batch before appending.
    ///
    /// Returns [`SequenceCheck::Duplicate`] with the original offsets for
    /// full duplicates, or [`LogError::OutOfOrderSequence`] /
    /// [`LogError::ProducerFenced`] when the sequence or epoch is wrong.
    pub fn check(
        &self,
        producer_id: ProducerId,
        epoch: ProducerEpoch,
        base_seq: i64,
        record_count: usize,
    ) -> Result<SequenceCheck, LogError> {
        crate::invariant!(
            base_seq != NO_SEQUENCE,
            "sequence-present",
            "idempotent batch from producer {producer_id} (epoch {epoch}) carries no base sequence"
        );
        let Some(entry) = self.entries.get(&producer_id) else {
            // First ever batch from this producer: any starting sequence is
            // accepted (Kafka requires 0 for epoch 0, but allows a fresh
            // start after epoch bumps; we accept the first seen).
            return Ok(SequenceCheck::InOrder);
        };
        if epoch < entry.epoch {
            return Err(LogError::ProducerFenced {
                producer_id,
                current_epoch: entry.epoch,
                got_epoch: epoch,
            });
        }
        if epoch > entry.epoch {
            // New epoch resets the sequence space.
            return Ok(SequenceCheck::InOrder);
        }
        let last_seq_of_batch = base_seq + record_count as i64 - 1;
        if let Some((cached_base, cached_last, base_off, last_off)) = entry.last_batch {
            if base_seq == cached_base && last_seq_of_batch == cached_last {
                return Ok(SequenceCheck::Duplicate {
                    base_offset: base_off,
                    last_offset: last_off,
                });
            }
        }
        if entry.last_seq == NO_SEQUENCE || base_seq == entry.last_seq + 1 {
            Ok(SequenceCheck::InOrder)
        } else if last_seq_of_batch <= entry.last_seq {
            // An older duplicate that we no longer have offsets for: Kafka
            // returns DuplicateSequence which producers treat as success
            // with unknown offset; we conservatively report it as a
            // duplicate of the last batch range if unknown.
            Err(LogError::OutOfOrderSequence {
                producer_id,
                expected: entry.last_seq + 1,
                got: base_seq,
            })
        } else {
            Err(LogError::OutOfOrderSequence {
                producer_id,
                expected: entry.last_seq + 1,
                got: base_seq,
            })
        }
    }

    /// Record a successfully appended batch.
    pub fn on_append(
        &mut self,
        producer_id: ProducerId,
        epoch: ProducerEpoch,
        base_seq: i64,
        base_offset: Offset,
        last_offset: Offset,
        transactional: bool,
    ) {
        let record_count = (last_offset - base_offset + 1).max(0);
        let entry = self.entries.entry(producer_id).or_insert(ProducerEntry {
            epoch,
            last_seq: NO_SEQUENCE,
            last_batch: None,
            txn_first_offset: None,
        });
        crate::invariant!(
            epoch >= entry.epoch,
            "epoch-fencing",
            "producer {producer_id} appended at stale epoch {epoch} (current epoch {})",
            entry.epoch
        );
        if epoch > entry.epoch {
            entry.epoch = epoch;
            entry.last_seq = NO_SEQUENCE;
            entry.last_batch = None;
        }
        if base_seq != NO_SEQUENCE {
            crate::invariant!(
                entry.last_seq == NO_SEQUENCE || base_seq == entry.last_seq + 1,
                "sequence-monotonicity",
                "producer {producer_id} (epoch {epoch}) appended base sequence {base_seq}, \
                 expected {}",
                entry.last_seq + 1
            );
            let last_seq = base_seq + record_count - 1;
            entry.last_seq = last_seq;
            entry.last_batch = Some((base_seq, last_seq, base_offset, last_offset));
        }
        if transactional && entry.txn_first_offset.is_none() {
            entry.txn_first_offset = Some(base_offset);
        }
    }

    /// Close the producer's open transaction on this partition (on marker
    /// append), returning the first offset the transaction covered.
    pub fn end_txn(&mut self, producer_id: ProducerId) -> Option<Offset> {
        self.entries.get_mut(&producer_id).and_then(|e| e.txn_first_offset.take())
    }

    /// First offset of the producer's open transaction, if any.
    pub fn txn_first_offset(&self, producer_id: ProducerId) -> Option<Offset> {
        self.entries.get(&producer_id).and_then(|e| e.txn_first_offset)
    }

    /// Smallest first-offset among all open transactions — the candidate
    /// last-stable-offset bound for read-committed fetches.
    pub fn earliest_open_txn_offset(&self) -> Option<Offset> {
        // detlint:allow[unordered-iter] min() over values is order-insensitive
        self.entries.values().filter_map(|e| e.txn_first_offset).min()
    }

    /// Latest known epoch for a producer id, if any batch was seen.
    pub fn epoch_of(&self, producer_id: ProducerId) -> Option<ProducerEpoch> {
        self.entries.get(&producer_id).map(|e| e.epoch)
    }

    /// Last appended sequence for a producer id at its current epoch.
    pub fn last_sequence(&self, producer_id: ProducerId) -> Option<i64> {
        self.entries.get(&producer_id).map(|e| e.last_seq)
    }

    /// Number of tracked producers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no producer has been seen.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Apply one stored batch's state transition — the shared step behind
    /// [`rebuild_from`](Self::rebuild_from) and snapshot-seeded recovery.
    /// Control markers close the producer's transaction; data batches update
    /// epoch/sequence/open-txn tracking. Batches without a producer id are
    /// ignored.
    pub fn apply_batch(&mut self, b: &StoredBatch) {
        if b.meta.producer_id < 0 {
            return;
        }
        if b.meta.is_control() {
            // A marker closes the producer's transaction.
            self.on_append(
                b.meta.producer_id,
                b.meta.producer_epoch,
                NO_SEQUENCE,
                b.base_offset(),
                b.last_offset(),
                false,
            );
            self.end_txn(b.meta.producer_id);
        } else {
            self.on_append(
                b.meta.producer_id,
                b.meta.producer_epoch,
                b.meta.base_sequence,
                b.base_offset(),
                b.last_offset(),
                b.meta.transactional,
            );
        }
    }

    /// Rebuild the table by scanning stored batches in offset order — what a
    /// freshly elected leader replica does from its local log (§4.1).
    pub fn rebuild_from<'a>(batches: impl IntoIterator<Item = &'a StoredBatch>) -> Self {
        let mut table = Self::new();
        for b in batches {
            table.apply_batch(b);
        }
        table
    }

    /// Export every entry for a producer-state snapshot, sorted by producer
    /// id so snapshots are byte-identical across runs.
    pub fn snapshot_entries(&self) -> Vec<ProducerSnapshotEntry> {
        let mut out: Vec<ProducerSnapshotEntry> = self
            .entries
            .iter() // detlint:allow[unordered-iter] sorted by pid below
            .map(|(pid, e)| ProducerSnapshotEntry {
                producer_id: *pid,
                epoch: e.epoch,
                last_seq: e.last_seq,
                last_batch: e.last_batch,
                txn_first_offset: e.txn_first_offset,
            })
            .collect();
        out.sort_unstable_by_key(|e| e.producer_id);
        out
    }

    /// Rebuild a table from snapshot entries (disk recovery's fast path; the
    /// suffix above the snapshot offset is then replayed with
    /// [`apply_batch`](Self::apply_batch)).
    pub fn from_snapshot_entries(
        snapshot: impl IntoIterator<Item = ProducerSnapshotEntry>,
    ) -> Self {
        let mut table = Self::new();
        for e in snapshot {
            table.entries.insert(
                e.producer_id,
                ProducerEntry {
                    epoch: e.epoch,
                    last_seq: e.last_seq,
                    last_batch: e.last_batch,
                    txn_first_offset: e.txn_first_offset,
                },
            );
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchMeta, ControlType};
    use crate::record::Record;
    use bytes::Bytes;

    fn rec() -> Record {
        Record::new(Some(Bytes::from_static(b"k")), Some(Bytes::from_static(b"v")), 0)
    }

    #[test]
    fn first_batch_accepted() {
        let t = ProducerStateTable::new();
        assert_eq!(t.check(1, 0, 0, 3).unwrap(), SequenceCheck::InOrder);
    }

    #[test]
    fn in_order_sequence_accepted() {
        let mut t = ProducerStateTable::new();
        t.on_append(1, 0, 0, 0, 2, false);
        assert_eq!(t.check(1, 0, 3, 2).unwrap(), SequenceCheck::InOrder);
    }

    #[test]
    fn exact_duplicate_detected_with_original_offsets() {
        let mut t = ProducerStateTable::new();
        t.on_append(1, 0, 0, 100, 102, false);
        assert_eq!(
            t.check(1, 0, 0, 3).unwrap(),
            SequenceCheck::Duplicate { base_offset: 100, last_offset: 102 }
        );
    }

    #[test]
    fn gap_rejected() {
        let mut t = ProducerStateTable::new();
        t.on_append(1, 0, 0, 0, 0, false);
        let err = t.check(1, 0, 5, 1).unwrap_err();
        assert!(matches!(err, LogError::OutOfOrderSequence { expected: 1, got: 5, .. }));
    }

    #[test]
    fn stale_epoch_fenced() {
        let mut t = ProducerStateTable::new();
        t.on_append(1, 2, 0, 0, 0, false);
        let err = t.check(1, 1, 1, 1).unwrap_err();
        assert!(matches!(err, LogError::ProducerFenced { current_epoch: 2, got_epoch: 1, .. }));
    }

    #[test]
    fn epoch_bump_resets_sequences() {
        let mut t = ProducerStateTable::new();
        t.on_append(1, 0, 0, 0, 9, false);
        // New epoch may start from sequence 0 again.
        assert_eq!(t.check(1, 1, 0, 1).unwrap(), SequenceCheck::InOrder);
        t.on_append(1, 1, 0, 10, 10, false);
        assert_eq!(t.last_sequence(1), Some(0));
        assert_eq!(t.epoch_of(1), Some(1));
    }

    #[test]
    fn txn_first_offset_tracked_and_cleared() {
        let mut t = ProducerStateTable::new();
        t.on_append(1, 0, 0, 50, 52, true);
        t.on_append(1, 0, 3, 60, 61, true);
        assert_eq!(t.txn_first_offset(1), Some(50));
        assert_eq!(t.earliest_open_txn_offset(), Some(50));
        assert_eq!(t.end_txn(1), Some(50));
        assert_eq!(t.txn_first_offset(1), None);
        assert_eq!(t.earliest_open_txn_offset(), None);
    }

    #[test]
    fn earliest_open_txn_across_producers() {
        let mut t = ProducerStateTable::new();
        t.on_append(1, 0, 0, 70, 70, true);
        t.on_append(2, 0, 0, 30, 30, true);
        assert_eq!(t.earliest_open_txn_offset(), Some(30));
        t.end_txn(2);
        assert_eq!(t.earliest_open_txn_offset(), Some(70));
    }

    #[test]
    fn rebuild_from_log_matches_incremental() {
        let batches = vec![
            StoredBatch {
                meta: BatchMeta::idempotent(1, 0, 0),
                entries: vec![(0, rec()), (1, rec())],
            },
            StoredBatch { meta: BatchMeta::transactional(2, 1, 0), entries: vec![(2, rec())] },
            StoredBatch { meta: BatchMeta::idempotent(1, 0, 2), entries: vec![(3, rec())] },
            StoredBatch {
                meta: BatchMeta::control(2, 1, ControlType::Commit),
                entries: vec![(4, rec())],
            },
        ];
        let t = ProducerStateTable::rebuild_from(&batches);
        assert_eq!(t.last_sequence(1), Some(2));
        assert_eq!(t.epoch_of(2), Some(1));
        // Producer 2's txn was closed by the marker.
        assert_eq!(t.txn_first_offset(2), None);
        // Dedup still works against rebuilt state.
        assert_eq!(
            t.check(1, 0, 2, 1).unwrap(),
            SequenceCheck::Duplicate { base_offset: 3, last_offset: 3 }
        );
    }

    #[cfg(feature = "invariants")]
    #[test]
    fn out_of_order_append_records_violation() {
        let _serial =
            crate::checks::TEST_SINK_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::checks::take_violations();
        let mut t = ProducerStateTable::new();
        t.on_append(1, 0, 0, 0, 2, false);
        // A buggy caller skips check() and appends a gapped sequence.
        t.on_append(1, 0, 9, 3, 3, false);
        let v = crate::checks::take_violations();
        assert!(v.iter().any(|v| v.invariant == "sequence-monotonicity"), "{v:?}");
    }

    #[cfg(feature = "invariants")]
    #[test]
    fn stale_epoch_append_records_violation() {
        let _serial =
            crate::checks::TEST_SINK_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::checks::take_violations();
        let mut t = ProducerStateTable::new();
        t.on_append(1, 5, 0, 0, 0, false);
        // A zombie from epoch 3 bypasses the fencing check.
        t.on_append(1, 3, 0, 1, 1, false);
        let v = crate::checks::take_violations();
        assert!(v.iter().any(|v| v.invariant == "epoch-fencing"), "{v:?}");
    }

    #[test]
    fn snapshot_entries_round_trip() {
        let mut t = ProducerStateTable::new();
        t.on_append(2, 1, 0, 10, 12, true);
        t.on_append(1, 0, 0, 0, 2, false);
        let entries = t.snapshot_entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.windows(2).all(|w| w[0].producer_id < w[1].producer_id), "sorted by pid");
        let rebuilt = ProducerStateTable::from_snapshot_entries(entries);
        assert_eq!(rebuilt.last_sequence(1), t.last_sequence(1));
        assert_eq!(rebuilt.epoch_of(2), t.epoch_of(2));
        assert_eq!(rebuilt.txn_first_offset(2), Some(10));
        // Dedup behaviour carries over: the retry is still a duplicate.
        assert_eq!(
            rebuilt.check(1, 0, 0, 3).unwrap(),
            SequenceCheck::Duplicate { base_offset: 0, last_offset: 2 }
        );
    }

    #[test]
    fn rebuild_ignores_plain_batches() {
        let batches = vec![StoredBatch { meta: BatchMeta::plain(), entries: vec![(0, rec())] }];
        let t = ProducerStateTable::rebuild_from(&batches);
        assert!(t.is_empty());
    }
}
