//! Record batches: the unit of append, replication, and idempotence.
//!
//! A batch carries the producer metadata used by the broker to deduplicate
//! retried appends (§4.1) and the transactional/control flags used by the
//! transaction protocol (§4.2). Sequence numbers are encoded once per batch
//! (the base sequence); per-record sequences are inferred monotonically,
//! exactly as the paper describes.

use crate::record::Record;
use crate::{Offset, ProducerEpoch, ProducerId, NO_PRODUCER_ID, NO_SEQUENCE, NO_TIMESTAMP};

/// Transaction control-marker type (§4.2.2). Control batches are written by
/// the transaction coordinator, not by producers, and are invisible to
/// applications — consumers use them to resolve transaction outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlType {
    /// All records from this batch's producer id appended before this marker
    /// (since the last marker) are committed.
    Commit,
    /// … are aborted and must not be returned to read-committed consumers.
    Abort,
}

/// Producer/transaction metadata attached to every appended batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMeta {
    /// Broker-assigned producer id; [`NO_PRODUCER_ID`] for plain appends.
    pub producer_id: ProducerId,
    /// Producer epoch for zombie fencing.
    pub producer_epoch: ProducerEpoch,
    /// Sequence number of the first record in the batch;
    /// [`NO_SEQUENCE`] for non-idempotent appends.
    pub base_sequence: i64,
    /// Whether the batch is part of an open transaction.
    pub transactional: bool,
    /// `Some` iff this is a control batch (commit/abort marker).
    pub control: Option<ControlType>,
}

impl BatchMeta {
    /// Metadata for a plain, non-idempotent, non-transactional append.
    pub fn plain() -> Self {
        Self {
            producer_id: NO_PRODUCER_ID,
            producer_epoch: 0,
            base_sequence: NO_SEQUENCE,
            transactional: false,
            control: None,
        }
    }

    /// Metadata for an idempotent (sequenced) append.
    pub fn idempotent(producer_id: ProducerId, epoch: ProducerEpoch, base_sequence: i64) -> Self {
        Self {
            producer_id,
            producer_epoch: epoch,
            base_sequence,
            transactional: false,
            control: None,
        }
    }

    /// Metadata for a transactional data append.
    pub fn transactional(
        producer_id: ProducerId,
        epoch: ProducerEpoch,
        base_sequence: i64,
    ) -> Self {
        Self {
            producer_id,
            producer_epoch: epoch,
            base_sequence,
            transactional: true,
            control: None,
        }
    }

    /// Metadata for a control (marker) batch written by the coordinator.
    pub fn control(producer_id: ProducerId, epoch: ProducerEpoch, ctl: ControlType) -> Self {
        Self {
            producer_id,
            producer_epoch: epoch,
            base_sequence: NO_SEQUENCE,
            transactional: true,
            control: Some(ctl),
        }
    }

    /// True when the batch carries a real producer id and sequence
    /// (i.e. it participates in idempotence checks).
    pub fn is_idempotent(&self) -> bool {
        self.producer_id != NO_PRODUCER_ID && self.base_sequence != NO_SEQUENCE
    }

    /// True for transaction control-marker batches.
    pub fn is_control(&self) -> bool {
        self.control.is_some()
    }
}

/// A batch as stored in the log: metadata plus records with their assigned
/// offsets.
///
/// Offsets inside a batch are contiguous at append time, but compaction may
/// later remove individual records, leaving gaps — Kafka preserves original
/// offsets through compaction and so do we, hence per-record offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredBatch {
    /// Producer/transaction metadata stamped at append time.
    pub meta: BatchMeta,
    /// `(offset, record)` pairs in strictly increasing offset order.
    pub entries: Vec<(Offset, Record)>,
}

impl StoredBatch {
    /// First offset in the batch. Panics on an empty batch (empty batches
    /// are never stored).
    pub fn base_offset(&self) -> Offset {
        self.entries.first().expect("stored batches are non-empty").0
    }

    /// Last offset in the batch.
    pub fn last_offset(&self) -> Offset {
        self.entries.last().expect("stored batches are non-empty").0
    }

    /// Last sequence number covered by this batch
    /// (base_sequence + record count - 1), or [`NO_SEQUENCE`].
    pub fn last_sequence(&self) -> i64 {
        if self.meta.base_sequence == NO_SEQUENCE {
            NO_SEQUENCE
        } else {
            self.meta.base_sequence + self.entries.len() as i64 - 1
        }
    }

    /// Maximum record timestamp in the batch.
    pub fn max_timestamp(&self) -> i64 {
        self.entries.iter().map(|(_, r)| r.timestamp).max().unwrap_or(NO_TIMESTAMP)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the batch holds no records (never true for stored batches).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate size in bytes (records plus a fixed per-batch header —
    /// the "few extra numeric fields" of §4.3).
    pub fn approximate_size(&self) -> usize {
        const BATCH_HEADER_BYTES: usize = 61; // Kafka v2 batch header size
        BATCH_HEADER_BYTES + self.entries.iter().map(|(_, r)| r.approximate_size()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn rec(ts: i64) -> Record {
        Record::new(Some(Bytes::from_static(b"k")), Some(Bytes::from_static(b"v")), ts)
    }

    #[test]
    fn plain_meta_is_not_idempotent() {
        let m = BatchMeta::plain();
        assert!(!m.is_idempotent());
        assert!(!m.is_control());
        assert!(!m.transactional);
    }

    #[test]
    fn idempotent_meta() {
        let m = BatchMeta::idempotent(7, 0, 10);
        assert!(m.is_idempotent());
        assert!(!m.transactional);
    }

    #[test]
    fn control_meta_is_transactional() {
        let m = BatchMeta::control(7, 1, ControlType::Commit);
        assert!(m.is_control());
        assert!(m.transactional);
        assert!(!m.is_idempotent());
    }

    #[test]
    fn stored_batch_offsets_and_sequences() {
        let b = StoredBatch {
            meta: BatchMeta::idempotent(1, 0, 5),
            entries: vec![(100, rec(1)), (101, rec(3)), (102, rec(2))],
        };
        assert_eq!(b.base_offset(), 100);
        assert_eq!(b.last_offset(), 102);
        assert_eq!(b.last_sequence(), 7);
        assert_eq!(b.max_timestamp(), 3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn non_idempotent_batch_has_no_sequence() {
        let b = StoredBatch { meta: BatchMeta::plain(), entries: vec![(0, rec(1))] };
        assert_eq!(b.last_sequence(), NO_SEQUENCE);
    }

    #[test]
    fn approximate_size_includes_header() {
        let b = StoredBatch { meta: BatchMeta::plain(), entries: vec![(0, rec(1))] };
        assert!(b.approximate_size() > rec(1).approximate_size());
    }
}
