//! The partition log: append, fetch, watermarks, and transaction visibility.
//!
//! This is the storage half of the paper's design. One `PartitionLog` holds
//! an immutable sequence of record batches with:
//!
//! * **log-end offset** (LEO) — where the next batch lands,
//! * **high watermark** (HW) — highest offset replicated to all in-sync
//!   replicas; consumers never read past it (§4),
//! * **last stable offset** (LSO) — first offset still covered by an *open*
//!   transaction; read-committed consumers never read past `min(HW, LSO)`
//!   (§4.2.3),
//! * an **aborted-transaction index** so read-committed fetches can skip
//!   batches whose transaction aborted — this is how Kafka "leverages the
//!   append offset ordering to avoid exposing aborted data" without a
//!   write-ahead log (§4.2),
//! * the **producer state table** for idempotent dedup (§4.1).

use crate::batch::{BatchMeta, ControlType, StoredBatch};
use crate::error::LogError;
use crate::index::TimeIndex;
use crate::producer_state::{ProducerStateTable, SequenceCheck};
use crate::record::Record;
use crate::segment::SegmentList;
use crate::storage::format::ProducerSnapshot;
use crate::storage::{DiskConfig, DiskLog, RecoveredLog};
use crate::{Offset, ProducerEpoch, ProducerId, NO_SEQUENCE, NO_TIMESTAMP};

/// Consumer isolation level (§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolationLevel {
    /// See everything below the high watermark, including records of
    /// ongoing and aborted transactions.
    #[default]
    ReadUncommitted,
    /// See only records of committed transactions, below min(HW, LSO).
    ReadCommitted,
}

/// A transaction that was aborted: its data batches must be skipped by
/// read-committed fetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortedTxn {
    /// Producer that aborted the transaction.
    pub producer_id: ProducerId,
    /// First data offset the transaction wrote on this partition.
    pub first_offset: Offset,
    /// Offset of the abort marker.
    pub marker_offset: Offset,
}

/// Result of an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// First offset assigned to the batch.
    pub base_offset: Offset,
    /// Last offset assigned to the batch.
    pub last_offset: Offset,
    /// True when the batch was recognised as an idempotent-producer
    /// duplicate and **not** re-appended; offsets are the original ones.
    pub duplicate: bool,
}

/// Result of a fetch: batches (possibly trimmed), plus log metadata the
/// consumer client needs to make progress.
#[derive(Debug, Clone)]
pub struct FetchResult {
    /// Fetched batches, possibly trimmed to the fetch bounds.
    pub batches: Vec<StoredBatch>,
    /// Where the consumer should fetch from next. Advances past skipped
    /// control batches and aborted data so pollers never spin.
    pub next_offset: Offset,
    /// High watermark at fetch time.
    pub high_watermark: Offset,
    /// Last stable offset at fetch time (read-committed bound).
    pub last_stable_offset: Offset,
    /// First retained offset at fetch time.
    pub log_start: Offset,
}

impl FetchResult {
    /// Flatten to `(offset, record)` pairs in offset order.
    pub fn records(&self) -> impl Iterator<Item = (Offset, &Record)> {
        self.batches.iter().flat_map(|b| b.entries.iter().map(|(o, r)| (*o, r)))
    }

    /// Total record count across batches.
    pub fn count(&self) -> usize {
        self.batches.iter().map(StoredBatch::len).sum()
    }
}

/// A single partition's log. Single-threaded; `kbroker` provides locking.
#[derive(Debug)]
pub struct PartitionLog {
    segments: SegmentList,
    /// Earliest addressable offset. Advanced only by [`truncate_prefix`];
    /// compaction leaves it alone (compacted-away offsets simply yield no
    /// records, exactly like Kafka).
    ///
    /// [`truncate_prefix`]: PartitionLog::truncate_prefix
    log_start: Offset,
    next_offset: Offset,
    high_watermark: Offset,
    producers: ProducerStateTable,
    aborted: Vec<AbortedTxn>,
    time_index: TimeIndex,
    max_timestamp: i64,
    /// When true (default), the high watermark tracks the log end — the
    /// single-replica behaviour. The replication layer switches this off and
    /// advances the watermark itself as followers catch up.
    auto_advance_hw: bool,
    /// Optional durable mirror: when attached, every mutation (append,
    /// marker, truncation, compaction) is also written to segment files, so
    /// the log survives a crash of its in-memory incarnation.
    disk: Option<DiskLog>,
}

impl Default for PartitionLog {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for PartitionLog {
    /// Clones are in-memory views: the disk attachment (if any) stays with
    /// the original, because two logs must never write the same directory.
    fn clone(&self) -> Self {
        Self {
            segments: self.segments.clone(),
            log_start: self.log_start,
            next_offset: self.next_offset,
            high_watermark: self.high_watermark,
            producers: self.producers.clone(),
            aborted: self.aborted.clone(),
            time_index: self.time_index.clone(),
            max_timestamp: self.max_timestamp,
            auto_advance_hw: self.auto_advance_hw,
            disk: None,
        }
    }
}

impl PartitionLog {
    /// An empty, in-memory partition log.
    pub fn new() -> Self {
        Self {
            segments: SegmentList::new(),
            log_start: 0,
            next_offset: 0,
            high_watermark: 0,
            producers: ProducerStateTable::new(),
            aborted: Vec::new(),
            time_index: TimeIndex::new(),
            max_timestamp: NO_TIMESTAMP,
            auto_advance_hw: true,
            disk: None,
        }
    }

    /// Put the log under external (replication-layer) high-watermark
    /// management.
    pub fn with_managed_watermark(mut self) -> Self {
        self.auto_advance_hw = false;
        self
    }

    // ------------------------------------------------------------------
    // Durable storage attachment
    // ------------------------------------------------------------------

    /// Attach a disk mirror; subsequent mutations are written through.
    pub fn attach_disk(&mut self, disk: DiskLog) {
        self.disk = Some(disk);
    }

    /// Detach and return the disk mirror, leaving the log purely in-memory.
    pub fn detach_disk(&mut self) -> Option<DiskLog> {
        self.disk.take()
    }

    /// Whether a disk mirror is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// Attach a *fresh* disk mirror at `cfg` and resync it to this log's
    /// current contents (full rewrite + checkpoint + snapshot). Used when a
    /// recovered replica's files diverged from the leader (e.g. compaction
    /// ran while it was down) and a full re-clone is the only safe repair.
    pub fn resync_disk(&mut self, cfg: DiskConfig) -> Result<(), LogError> {
        let mut disk = DiskLog::open_clean(cfg)?;
        disk.rewrite_all(self.segments.iter_from(i64::MIN))?;
        self.disk = Some(disk);
        self.disk_checkpoint()?;
        self.disk_snapshot()
    }

    /// Rebuild a partition log from what [`DiskLog::recover`] read back:
    /// surviving batches in offset order, checkpointed bounds, and (when a
    /// valid producer snapshot exists) snapshot-seeded producer state with a
    /// suffix replay — otherwise a full §4.1 rescan.
    pub fn from_recovered(rec: RecoveredLog) -> Self {
        let RecoveredLog { disk, batches, log_start, high_watermark, snapshot } = rec;
        let mut time_index = TimeIndex::new();
        let mut max_timestamp = NO_TIMESTAMP;
        for b in &batches {
            let ts = b.max_timestamp();
            if ts > max_timestamp {
                max_timestamp = ts;
                time_index.maybe_add(ts, b.base_offset());
            }
        }
        let next_offset =
            batches.last().map_or(log_start.max(high_watermark), |b| b.last_offset() + 1);
        // Snapshot fast path: seed the producer table and aborted index from
        // the snapshot, then replay only the suffix at or above its offset.
        let seeded = snapshot.map(|snap| {
            let mut table = ProducerStateTable::from_snapshot_entries(snap.entries);
            let mut aborted = snap.aborted;
            for b in batches.iter().filter(|b| b.base_offset() >= snap.snapshot_offset) {
                if b.meta.control == Some(ControlType::Abort) {
                    if let Some(first) = table.txn_first_offset(b.meta.producer_id) {
                        aborted.push(AbortedTxn {
                            producer_id: b.meta.producer_id,
                            first_offset: first,
                            marker_offset: b.base_offset(),
                        });
                    }
                }
                table.apply_batch(b);
            }
            (table, aborted)
        });
        let mut log = Self {
            segments: SegmentList::from_batches(batches),
            log_start,
            next_offset,
            high_watermark,
            producers: ProducerStateTable::new(),
            aborted: Vec::new(),
            time_index,
            max_timestamp,
            auto_advance_hw: true,
            disk: Some(disk),
        };
        match seeded {
            Some((table, aborted)) => {
                log.producers = table;
                log.aborted = aborted;
            }
            None => log.recover_producer_state(),
        }
        log
    }

    /// Mirror the `(log_start, high_watermark)` checkpoint when attached.
    fn disk_checkpoint(&mut self) -> Result<(), LogError> {
        let (start, hw) = (self.log_start, self.high_watermark);
        match self.disk.as_mut() {
            Some(d) => d.write_checkpoint(start, hw),
            None => Ok(()),
        }
    }

    /// Write a fresh producer-state snapshot at the current log end.
    fn disk_snapshot(&mut self) -> Result<(), LogError> {
        if self.disk.is_none() {
            return Ok(());
        }
        let snap = ProducerSnapshot {
            snapshot_offset: self.next_offset,
            entries: self.producers.snapshot_entries(),
            aborted: self.aborted.clone(),
        };
        self.disk.as_mut().expect("checked above").write_snapshot(&snap)
    }

    // ------------------------------------------------------------------
    // Append path
    // ------------------------------------------------------------------

    /// Append a batch of records with the given metadata.
    ///
    /// Validates idempotent sequences and producer epochs; duplicates are
    /// acked (with their original offsets) without re-appending.
    pub fn append(
        &mut self,
        meta: BatchMeta,
        records: Vec<Record>,
    ) -> Result<AppendOutcome, LogError> {
        if records.is_empty() {
            return Err(LogError::CorruptBatch("empty batch".into()));
        }
        if meta.is_control() {
            return Err(LogError::CorruptBatch("control batches must use append_control".into()));
        }
        if meta.transactional && meta.producer_id < 0 {
            return Err(LogError::InvalidTxnState(
                "transactional batch without producer id".into(),
            ));
        }
        if meta.is_idempotent() {
            match self.producers.check(
                meta.producer_id,
                meta.producer_epoch,
                meta.base_sequence,
                records.len(),
            )? {
                SequenceCheck::Duplicate { base_offset, last_offset } => {
                    kobs::count("klog.dedup_hits", 1);
                    kobs::event!(
                        records.iter().map(|r| r.timestamp).max().unwrap_or(0),
                        "klog",
                        "dedup_hit",
                        producer_id = meta.producer_id,
                        base_sequence = meta.base_sequence,
                        base_offset = base_offset,
                    );
                    return Ok(AppendOutcome { base_offset, last_offset, duplicate: true });
                }
                SequenceCheck::InOrder => {}
            }
        } else if meta.producer_id >= 0 {
            // Epoch check still applies to non-sequenced writes from a known
            // producer (e.g. a fenced zombie must not write at all).
            if let Some(current) = self.producers.epoch_of(meta.producer_id) {
                if meta.producer_epoch < current {
                    return Err(LogError::ProducerFenced {
                        producer_id: meta.producer_id,
                        current_epoch: current,
                        got_epoch: meta.producer_epoch,
                    });
                }
            }
        }

        let base_offset = self.next_offset;
        let entries: Vec<(Offset, Record)> =
            records.into_iter().enumerate().map(|(i, r)| (base_offset + i as i64, r)).collect();
        let last_offset = entries.last().expect("non-empty").0;
        let batch = StoredBatch { meta: meta.clone(), entries };
        let max_ts = batch.max_timestamp();
        if max_ts > self.max_timestamp {
            self.max_timestamp = max_ts;
            self.time_index.maybe_add(max_ts, base_offset);
        }
        // Span only inside a traced lifecycle (a commit cycle's produce or
        // marker path); harness-side feeder appends stay span-free. The disk
        // mirror runs *inside* the append span so its `fsync` child nests.
        let trace = kobs::ktrace::in_span().then(|| {
            let ts = max_ts.max(0);
            let h = kobs::child_span!(
                ts,
                "klog",
                "append",
                records = last_offset - base_offset + 1,
                base_offset = base_offset,
            );
            (h, ts)
        });
        let mut rolled = false;
        if let Some(d) = self.disk.as_mut() {
            let _in_append = trace.as_ref().map(|(h, _)| kobs::ktrace::enter(*h));
            rolled = d.append_batch(&batch)?;
        }
        self.segments.append(batch);
        self.next_offset = last_offset + 1;
        if meta.producer_id >= 0 {
            self.producers.on_append(
                meta.producer_id,
                meta.producer_epoch,
                meta.base_sequence,
                base_offset,
                last_offset,
                meta.transactional,
            );
        }
        if self.auto_advance_hw {
            self.high_watermark = self.next_offset;
        }
        if rolled {
            // A finished segment gets a producer-state snapshot, so recovery
            // can seed the table and replay only the active segment.
            self.disk_snapshot()?;
        }
        self.disk_checkpoint()?;
        if let Some((h, ts)) = trace {
            kobs::ktrace::finish_span(h, ts * 1000);
        }
        Ok(AppendOutcome { base_offset, last_offset, duplicate: false })
    }

    /// Append a transaction control marker (commit or abort) for
    /// `producer_id`. Written by the transaction coordinator (§4.2.2).
    ///
    /// Closes the producer's open transaction on this partition; for aborts,
    /// the covered offset range is added to the aborted-transaction index.
    pub fn append_control(
        &mut self,
        producer_id: ProducerId,
        epoch: ProducerEpoch,
        ctl: ControlType,
        timestamp: i64,
    ) -> Result<Offset, LogError> {
        if let Some(current) = self.producers.epoch_of(producer_id) {
            if epoch < current {
                return Err(LogError::ProducerFenced {
                    producer_id,
                    current_epoch: current,
                    got_epoch: epoch,
                });
            }
        }
        let marker_offset = self.next_offset;
        let marker_record = Record { key: None, value: None, timestamp, headers: Vec::new() };
        let batch = StoredBatch {
            meta: BatchMeta::control(producer_id, epoch, ctl),
            entries: vec![(marker_offset, marker_record)],
        };
        let trace = kobs::ktrace::in_span().then(|| {
            kobs::child_span!(timestamp, "klog", "append_control", offset = marker_offset)
        });
        let mut rolled = false;
        if let Some(d) = self.disk.as_mut() {
            let _in_append = trace.as_ref().map(|h| kobs::ktrace::enter(*h));
            rolled = d.append_batch(&batch)?;
        }
        self.segments.append(batch);
        self.next_offset = marker_offset + 1;
        // Close the open transaction; Kafka tolerates markers for
        // transactions with no data on this partition (e.g. retried
        // registration), so a missing open txn is not an error.
        self.producers.on_append(
            producer_id,
            epoch,
            NO_SEQUENCE,
            marker_offset,
            marker_offset,
            false,
        );
        if let Some(first) = self.producers.end_txn(producer_id) {
            if ctl == ControlType::Abort {
                self.aborted.push(AbortedTxn { producer_id, first_offset: first, marker_offset });
            }
        }
        if self.auto_advance_hw {
            self.high_watermark = self.next_offset;
        }
        if rolled {
            self.disk_snapshot()?;
        }
        self.disk_checkpoint()?;
        if let Some(h) = trace {
            kobs::ktrace::finish_span(h, timestamp * 1000);
        }
        Ok(marker_offset)
    }

    /// Install a batch verbatim at its original offsets — the follower
    /// catch-up path after disk recovery (replicating the suffix the replica
    /// missed while down). The batch must start at the current log end;
    /// producer/transaction state advances exactly as a live append would.
    pub fn install_batch(&mut self, batch: StoredBatch) -> Result<(), LogError> {
        if batch.is_empty() {
            return Err(LogError::CorruptBatch("empty batch".into()));
        }
        if batch.base_offset() != self.next_offset {
            return Err(LogError::CorruptBatch(format!(
                "install_batch at offset {} but log end is {}",
                batch.base_offset(),
                self.next_offset
            )));
        }
        let mut rolled = false;
        if let Some(d) = self.disk.as_mut() {
            rolled = d.append_batch(&batch)?;
        }
        let max_ts = batch.max_timestamp();
        if max_ts > self.max_timestamp {
            self.max_timestamp = max_ts;
            self.time_index.maybe_add(max_ts, batch.base_offset());
        }
        // Maintain the aborted index *before* applying the batch (the apply
        // clears the open-txn marker an abort refers to).
        if batch.meta.control == Some(ControlType::Abort) {
            if let Some(first) = self.producers.txn_first_offset(batch.meta.producer_id) {
                self.aborted.push(AbortedTxn {
                    producer_id: batch.meta.producer_id,
                    first_offset: first,
                    marker_offset: batch.base_offset(),
                });
            }
        }
        self.producers.apply_batch(&batch);
        self.next_offset = batch.last_offset() + 1;
        self.segments.append(batch);
        if rolled {
            self.disk_snapshot()?;
        }
        self.disk_checkpoint()
    }

    // ------------------------------------------------------------------
    // Fetch path
    // ------------------------------------------------------------------

    /// Fetch up to `max_records` records starting at `from`, honouring the
    /// isolation level. Control batches are never returned; read-committed
    /// fetches additionally skip aborted transactional data.
    pub fn fetch(
        &self,
        from: Offset,
        max_records: usize,
        isolation: IsolationLevel,
    ) -> Result<FetchResult, LogError> {
        let bound = self.visible_bound(isolation);
        if from < self.log_start() {
            return Err(LogError::OffsetOutOfRange {
                requested: from,
                log_start: self.log_start(),
                log_end: self.next_offset,
            });
        }
        if from > self.next_offset {
            return Err(LogError::OffsetOutOfRange {
                requested: from,
                log_start: self.log_start(),
                log_end: self.next_offset,
            });
        }
        let mut out: Vec<StoredBatch> = Vec::new();
        let mut taken = 0usize;
        let mut next_offset = from;
        for batch in self.segments.iter_from(from) {
            if batch.base_offset() >= bound || taken >= max_records {
                break;
            }
            // Whole batch is below `from`? iter_from already skips those.
            let skip_data = batch.meta.is_control()
                || (isolation == IsolationLevel::ReadCommitted && self.is_aborted(batch));
            if skip_data {
                // Advance position past it without delivering records, but
                // only if the batch is fully below the visibility bound.
                if batch.last_offset() < bound {
                    next_offset = next_offset.max(batch.last_offset() + 1);
                }
                continue;
            }
            let mut entries: Vec<(Offset, Record)> = batch
                .entries
                .iter()
                .filter(|(o, _)| *o >= from && *o < bound)
                .take(max_records - taken)
                .cloned()
                .collect();
            if entries.is_empty() {
                continue;
            }
            taken += entries.len();
            let last = entries.last().expect("non-empty").0;
            next_offset = next_offset.max(last + 1);
            out.push(StoredBatch {
                meta: batch.meta.clone(),
                entries: std::mem::take(&mut entries),
            });
        }
        Ok(FetchResult {
            batches: out,
            next_offset,
            high_watermark: self.high_watermark,
            last_stable_offset: self.last_stable_offset(),
            log_start: self.log_start(),
        })
    }

    fn is_aborted(&self, batch: &StoredBatch) -> bool {
        if !batch.meta.transactional || batch.meta.is_control() {
            return false;
        }
        let (pid, base) = (batch.meta.producer_id, batch.base_offset());
        self.aborted
            .iter()
            .any(|a| a.producer_id == pid && a.first_offset <= base && base < a.marker_offset)
    }

    fn visible_bound(&self, isolation: IsolationLevel) -> Offset {
        match isolation {
            IsolationLevel::ReadUncommitted => self.high_watermark,
            IsolationLevel::ReadCommitted => self.high_watermark.min(self.last_stable_offset()),
        }
    }

    // ------------------------------------------------------------------
    // Metadata
    // ------------------------------------------------------------------

    /// Offset at which the next append will land (LEO).
    pub fn log_end(&self) -> Offset {
        self.next_offset
    }

    /// Earliest addressable offset.
    pub fn log_start(&self) -> Offset {
        self.log_start
    }

    /// Replication high watermark (records below it are commit-durable).
    pub fn high_watermark(&self) -> Offset {
        self.high_watermark
    }

    /// Advance the high watermark (replication layer). Never moves backward
    /// and never exceeds the log end.
    pub fn advance_high_watermark(&mut self, to: Offset) {
        self.high_watermark = self.high_watermark.max(to.min(self.next_offset));
        self.disk_checkpoint().expect("disk checkpoint mirror");
    }

    /// First offset still covered by an open transaction, or the log end if
    /// none — everything strictly below is "stable" (decided).
    pub fn last_stable_offset(&self) -> Offset {
        self.producers.earliest_open_txn_offset().unwrap_or(self.next_offset)
    }

    /// The aborted-transaction index (visible for tests and the consumer
    /// client simulation).
    pub fn aborted_txns(&self) -> &[AbortedTxn] {
        &self.aborted
    }

    /// Maximum record timestamp ever appended.
    pub fn max_timestamp(&self) -> i64 {
        self.max_timestamp
    }

    /// Earliest offset whose batch max-timestamp is `>= ts` (time index
    /// lookup; approximate exactly the way Kafka's is).
    pub fn offset_for_timestamp(&self, ts: i64) -> Option<Offset> {
        self.time_index.lookup(ts)
    }

    /// Direct record access (tests / state restore).
    pub fn get(&self, offset: Offset) -> Option<&Record> {
        self.segments
            .iter_from(offset)
            .next()
            .and_then(|b| b.entries.iter().find(|(o, _)| *o == offset).map(|(_, r)| r))
    }

    /// Number of data records currently retained (excludes control markers).
    pub fn record_count(&self) -> usize {
        self.segments
            .iter_from(self.log_start())
            .filter(|b| !b.meta.is_control())
            .map(StoredBatch::len)
            .sum()
    }

    /// Total approximate bytes retained.
    pub fn size_bytes(&self) -> usize {
        self.segments.iter_from(self.log_start()).map(StoredBatch::approximate_size).sum()
    }

    /// Per-producer state (tests; leader-failover simulation).
    pub fn producer_state(&self) -> &ProducerStateTable {
        &self.producers
    }

    /// Iterate all retained batches in offset order.
    pub fn batches(&self) -> impl Iterator<Item = &StoredBatch> {
        self.segments.iter_from(i64::MIN)
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    /// Delete whole batches entirely below `new_start` (repartition-topic
    /// purging / retention, §3.2). The high watermark and producer state are
    /// unaffected.
    pub fn truncate_prefix(&mut self, new_start: Offset) {
        let new_start = new_start.min(self.next_offset);
        if new_start <= self.log_start {
            return;
        }
        self.segments.truncate_prefix(new_start);
        self.log_start = new_start;
        if let Some(d) = self.disk.as_mut() {
            d.truncate_prefix(new_start).expect("disk prefix-truncation mirror");
        }
        self.disk_checkpoint().expect("disk checkpoint mirror");
    }

    /// Truncate the log suffix so that `log_end <= to` (follower divergence
    /// repair after leader change). Also rolls back watermark bookkeeping.
    pub fn truncate_suffix(&mut self, to: Offset) {
        self.segments.truncate_suffix(to);
        self.next_offset = self
            .segments
            .last_offset()
            .map_or_else(|| self.log_start.min(to.max(self.log_start)), |o| o + 1);
        self.high_watermark = self.high_watermark.min(self.next_offset);
        self.aborted.retain(|a| a.marker_offset < self.next_offset);
        self.recover_producer_state();
        if let Some(d) = self.disk.as_mut() {
            d.truncate_suffix(to).expect("disk suffix-truncation mirror");
        }
        self.disk_checkpoint().expect("disk checkpoint mirror");
        // The old snapshot may describe truncated-away state; rewrite it
        // from the freshly rebuilt table.
        self.disk_snapshot().expect("disk snapshot mirror");
    }

    /// First offset to retain under the given policies, or `None` when
    /// nothing expires. Whole batches expire together (Kafka deletes whole
    /// segments; we are finer-grained but keep batch granularity):
    ///
    /// * `retention_ms`: batches whose max timestamp is older than
    ///   `now - retention_ms` expire,
    /// * `retention_bytes`: oldest batches expire until the retained size
    ///   fits the budget.
    ///
    /// Only stable data (below min(HW, LSO)) is considered so an open
    /// transaction is never cut.
    pub fn retention_cutoff(
        &self,
        now_ms: i64,
        retention_ms: Option<i64>,
        retention_bytes: Option<usize>,
    ) -> Option<Offset> {
        let stable = self.high_watermark.min(self.last_stable_offset());
        let mut cutoff: Option<Offset> = None;
        if let Some(ms) = retention_ms {
            let horizon = now_ms.saturating_sub(ms);
            for batch in self.segments.iter_from(self.log_start) {
                if batch.last_offset() >= stable {
                    break;
                }
                if batch.max_timestamp() < horizon {
                    cutoff = Some(batch.last_offset() + 1);
                } else {
                    break;
                }
            }
        }
        if let Some(budget) = retention_bytes {
            let total: usize =
                self.segments.iter_from(self.log_start).map(StoredBatch::approximate_size).sum();
            let mut excess = total.saturating_sub(budget);
            if excess > 0 {
                for batch in self.segments.iter_from(self.log_start) {
                    if excess == 0 || batch.last_offset() >= stable {
                        break;
                    }
                    excess = excess.saturating_sub(batch.approximate_size());
                    let candidate = batch.last_offset() + 1;
                    if cutoff.is_none_or(|c| candidate > c) {
                        cutoff = Some(candidate);
                    }
                }
            }
        }
        cutoff.filter(|&c| c > self.log_start)
    }

    /// Rebuild producer dedup state and the aborted-transaction index by
    /// scanning the retained log — simulates a broker restart / new leader
    /// election (§4.1, §4.2.1).
    pub fn recover_producer_state(&mut self) {
        let batches: Vec<&StoredBatch> = self.segments.iter_from(i64::MIN).collect();
        // Rebuild aborted index from markers.
        let mut aborted = Vec::new();
        let mut open: std::collections::HashMap<ProducerId, Offset> =
            std::collections::HashMap::new();
        for b in &batches {
            if b.meta.producer_id < 0 {
                continue;
            }
            match b.meta.control {
                Some(ControlType::Abort) => {
                    if let Some(first) = open.remove(&b.meta.producer_id) {
                        aborted.push(AbortedTxn {
                            producer_id: b.meta.producer_id,
                            first_offset: first,
                            marker_offset: b.base_offset(),
                        });
                    }
                }
                Some(ControlType::Commit) => {
                    open.remove(&b.meta.producer_id);
                }
                None => {
                    if b.meta.transactional {
                        open.entry(b.meta.producer_id).or_insert_with(|| b.base_offset());
                    }
                }
            }
        }
        self.producers = ProducerStateTable::rebuild_from(batches);
        self.aborted = aborted;
    }

    /// Replace the retained batches (used by compaction). Offsets must be
    /// preserved by the caller.
    pub(crate) fn replace_batches(&mut self, batches: Vec<StoredBatch>) {
        self.segments = SegmentList::from_batches(batches);
        if let Some(d) = self.disk.as_mut() {
            d.rewrite_all(self.segments.iter_from(i64::MIN)).expect("disk compaction mirror");
        }
        // Refresh the snapshot at the log end: compaction may have removed
        // suffix batches a snapshot-seeded replay would otherwise need.
        self.disk_snapshot().expect("disk snapshot mirror");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: usize, ts0: i64) -> Vec<Record> {
        (0..n).map(|i| Record::of_str("k", &format!("v{i}"), ts0 + i as i64)).collect()
    }

    #[test]
    fn append_assigns_dense_offsets() {
        let mut log = PartitionLog::new();
        let a = log.append(BatchMeta::plain(), recs(3, 0)).unwrap();
        assert_eq!((a.base_offset, a.last_offset), (0, 2));
        let b = log.append(BatchMeta::plain(), recs(2, 10)).unwrap();
        assert_eq!((b.base_offset, b.last_offset), (3, 4));
        assert_eq!(log.log_end(), 5);
        assert_eq!(log.high_watermark(), 5);
    }

    #[test]
    fn empty_batch_rejected() {
        let mut log = PartitionLog::new();
        assert!(matches!(log.append(BatchMeta::plain(), vec![]), Err(LogError::CorruptBatch(_))));
    }

    #[test]
    fn idempotent_duplicate_not_reappended() {
        let mut log = PartitionLog::new();
        let first = log.append(BatchMeta::idempotent(1, 0, 0), recs(3, 0)).unwrap();
        assert!(!first.duplicate);
        // Retry of the same batch (same pid/epoch/base sequence).
        let retry = log.append(BatchMeta::idempotent(1, 0, 0), recs(3, 0)).unwrap();
        assert!(retry.duplicate);
        assert_eq!(retry.base_offset, first.base_offset);
        assert_eq!(log.log_end(), 3, "duplicate must not grow the log");
    }

    #[test]
    fn sequence_gap_rejected() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::idempotent(1, 0, 0), recs(1, 0)).unwrap();
        assert!(matches!(
            log.append(BatchMeta::idempotent(1, 0, 5), recs(1, 0)),
            Err(LogError::OutOfOrderSequence { .. })
        ));
    }

    #[test]
    fn fenced_producer_rejected() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::idempotent(1, 3, 0), recs(1, 0)).unwrap();
        assert!(matches!(
            log.append(BatchMeta::idempotent(1, 2, 1), recs(1, 0)),
            Err(LogError::ProducerFenced { .. })
        ));
    }

    #[test]
    fn fetch_returns_appended_records() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), recs(5, 100)).unwrap();
        let f = log.fetch(0, 100, IsolationLevel::ReadUncommitted).unwrap();
        assert_eq!(f.count(), 5);
        assert_eq!(f.next_offset, 5);
        let offsets: Vec<Offset> = f.records().map(|(o, _)| o).collect();
        assert_eq!(offsets, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fetch_respects_max_records_and_resumes() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), recs(10, 0)).unwrap();
        let f1 = log.fetch(0, 4, IsolationLevel::ReadUncommitted).unwrap();
        assert_eq!(f1.count(), 4);
        assert_eq!(f1.next_offset, 4);
        let f2 = log.fetch(f1.next_offset, 100, IsolationLevel::ReadUncommitted).unwrap();
        assert_eq!(f2.count(), 6);
    }

    #[test]
    fn fetch_bounded_by_high_watermark() {
        let mut log = PartitionLog::new().with_managed_watermark();
        log.append(BatchMeta::plain(), recs(5, 0)).unwrap();
        // HW still 0: nothing visible.
        let f = log.fetch(0, 100, IsolationLevel::ReadUncommitted).unwrap();
        assert_eq!(f.count(), 0);
        log.advance_high_watermark(3);
        let f = log.fetch(0, 100, IsolationLevel::ReadUncommitted).unwrap();
        assert_eq!(f.count(), 3);
        assert_eq!(f.high_watermark, 3);
    }

    #[test]
    fn read_committed_blocks_on_open_txn() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::transactional(9, 0, 0), recs(3, 0)).unwrap();
        assert_eq!(log.last_stable_offset(), 0);
        let rc = log.fetch(0, 100, IsolationLevel::ReadCommitted).unwrap();
        assert_eq!(rc.count(), 0, "open txn data must be invisible");
        let ru = log.fetch(0, 100, IsolationLevel::ReadUncommitted).unwrap();
        assert_eq!(ru.count(), 3, "read-uncommitted sees it");
    }

    #[test]
    fn commit_marker_releases_records() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::transactional(9, 0, 0), recs(3, 0)).unwrap();
        let marker = log.append_control(9, 0, ControlType::Commit, 10).unwrap();
        assert_eq!(marker, 3);
        assert_eq!(log.last_stable_offset(), 4);
        let rc = log.fetch(0, 100, IsolationLevel::ReadCommitted).unwrap();
        assert_eq!(rc.count(), 3);
        // Consumer's position must advance past the marker.
        assert_eq!(rc.next_offset, 4);
    }

    #[test]
    fn abort_marker_hides_records_from_read_committed() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::transactional(9, 0, 0), recs(3, 0)).unwrap();
        log.append_control(9, 0, ControlType::Abort, 10).unwrap();
        let rc = log.fetch(0, 100, IsolationLevel::ReadCommitted).unwrap();
        assert_eq!(rc.count(), 0, "aborted data invisible to read-committed");
        assert_eq!(rc.next_offset, 4, "position must advance past aborted txn");
        // Read-uncommitted still sees aborted data (like real Kafka).
        let ru = log.fetch(0, 100, IsolationLevel::ReadUncommitted).unwrap();
        assert_eq!(ru.count(), 3);
        assert_eq!(log.aborted_txns().len(), 1);
    }

    #[test]
    fn interleaved_txns_lso_tracks_earliest_open() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::transactional(1, 0, 0), recs(1, 0)).unwrap(); // off 0
        log.append(BatchMeta::transactional(2, 0, 0), recs(1, 0)).unwrap(); // off 1
        assert_eq!(log.last_stable_offset(), 0);
        log.append_control(1, 0, ControlType::Commit, 0).unwrap(); // off 2
                                                                   // Producer 2 still open from offset 1.
        assert_eq!(log.last_stable_offset(), 1);
        let rc = log.fetch(0, 100, IsolationLevel::ReadCommitted).unwrap();
        assert_eq!(rc.count(), 1, "only producer 1's record visible");
        log.append_control(2, 0, ControlType::Commit, 0).unwrap(); // off 3
        assert_eq!(log.last_stable_offset(), 4);
        let rc = log.fetch(0, 100, IsolationLevel::ReadCommitted).unwrap();
        assert_eq!(rc.count(), 2);
    }

    #[test]
    fn committed_then_aborted_interleaving_filters_correctly() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::transactional(1, 0, 0), recs(2, 0)).unwrap(); // 0-1 commit
        log.append(BatchMeta::transactional(2, 0, 0), recs(2, 0)).unwrap(); // 2-3 abort
        log.append(BatchMeta::plain(), recs(1, 0)).unwrap(); // 4 plain
        log.append_control(2, 0, ControlType::Abort, 0).unwrap(); // 5
        log.append_control(1, 0, ControlType::Commit, 0).unwrap(); // 6
        let rc = log.fetch(0, 100, IsolationLevel::ReadCommitted).unwrap();
        let offsets: Vec<Offset> = rc.records().map(|(o, _)| o).collect();
        assert_eq!(offsets, vec![0, 1, 4]);
    }

    #[test]
    fn fetch_from_log_end_is_empty_not_error() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), recs(2, 0)).unwrap();
        let f = log.fetch(2, 100, IsolationLevel::ReadUncommitted).unwrap();
        assert_eq!(f.count(), 0);
        assert_eq!(f.next_offset, 2);
    }

    #[test]
    fn fetch_beyond_log_end_errors() {
        let log = PartitionLog::new();
        assert!(matches!(
            log.fetch(1, 100, IsolationLevel::ReadUncommitted),
            Err(LogError::OffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn truncate_prefix_drops_old_batches() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), recs(3, 0)).unwrap();
        log.append(BatchMeta::plain(), recs(3, 0)).unwrap();
        log.truncate_prefix(3);
        assert_eq!(log.log_start(), 3);
        assert!(matches!(
            log.fetch(0, 100, IsolationLevel::ReadUncommitted),
            Err(LogError::OffsetOutOfRange { .. })
        ));
        let f = log.fetch(3, 100, IsolationLevel::ReadUncommitted).unwrap();
        assert_eq!(f.count(), 3);
    }

    #[test]
    fn truncate_suffix_rolls_back() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), recs(3, 0)).unwrap();
        log.append(BatchMeta::plain(), recs(3, 0)).unwrap();
        log.truncate_suffix(3);
        assert_eq!(log.log_end(), 3);
        assert_eq!(log.high_watermark(), 3);
    }

    #[test]
    fn recovery_rebuilds_dedup_and_aborted_index() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::idempotent(1, 0, 0), recs(2, 0)).unwrap();
        log.append(BatchMeta::transactional(2, 0, 0), recs(2, 0)).unwrap();
        log.append_control(2, 0, ControlType::Abort, 0).unwrap();
        let aborted_before = log.aborted_txns().to_vec();
        log.recover_producer_state();
        assert_eq!(log.aborted_txns(), aborted_before.as_slice());
        // Dedup survives recovery: the same retry is still a duplicate.
        let retry = log.append(BatchMeta::idempotent(1, 0, 0), recs(2, 0)).unwrap();
        assert!(retry.duplicate);
    }

    #[test]
    fn offset_for_timestamp_lookup() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), vec![Record::of_str("k", "a", 100)]).unwrap();
        log.append(BatchMeta::plain(), vec![Record::of_str("k", "b", 200)]).unwrap();
        log.append(BatchMeta::plain(), vec![Record::of_str("k", "c", 300)]).unwrap();
        assert_eq!(log.offset_for_timestamp(150), Some(1));
        assert_eq!(log.offset_for_timestamp(300), Some(2));
        assert_eq!(log.offset_for_timestamp(301), None);
        assert_eq!(log.offset_for_timestamp(0), Some(0));
    }

    #[test]
    fn get_by_offset() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), recs(3, 7)).unwrap();
        assert_eq!(log.get(1).unwrap().timestamp, 8);
        assert!(log.get(99).is_none());
    }

    #[test]
    fn record_count_excludes_markers() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::transactional(1, 0, 0), recs(2, 0)).unwrap();
        log.append_control(1, 0, ControlType::Commit, 0).unwrap();
        assert_eq!(log.record_count(), 2);
        assert_eq!(log.log_end(), 3);
    }

    #[test]
    fn marker_without_open_txn_is_tolerated() {
        let mut log = PartitionLog::new();
        let off = log.append_control(5, 0, ControlType::Commit, 0).unwrap();
        assert_eq!(off, 0);
        assert!(log.aborted_txns().is_empty());
    }

    #[test]
    fn control_batch_via_append_rejected() {
        let mut log = PartitionLog::new();
        let meta = BatchMeta::control(1, 0, ControlType::Commit);
        assert!(matches!(log.append(meta, recs(1, 0)), Err(LogError::CorruptBatch(_))));
    }

    #[test]
    fn stale_epoch_marker_rejected() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::transactional(1, 5, 0), recs(1, 0)).unwrap();
        assert!(matches!(
            log.append_control(1, 4, ControlType::Commit, 0),
            Err(LogError::ProducerFenced { .. })
        ));
    }
}

#[cfg(test)]
mod retention_cutoff_tests {
    use super::*;

    fn recs_at(ts: i64, n: usize) -> Vec<Record> {
        (0..n).map(|_| Record::of_str("k", "some-payload", ts)).collect()
    }

    #[test]
    fn no_policy_no_cutoff() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), recs_at(0, 3)).unwrap();
        assert_eq!(log.retention_cutoff(1_000_000, None, None), None);
    }

    #[test]
    fn time_policy_expires_old_batches_only() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), recs_at(0, 2)).unwrap(); // 0-1
        log.append(BatchMeta::plain(), recs_at(500, 2)).unwrap(); // 2-3
        log.append(BatchMeta::plain(), recs_at(900, 2)).unwrap(); // 4-5
                                                                  // now=1000, retention=400 ⇒ horizon 600: first two batches expire.
        assert_eq!(log.retention_cutoff(1_000, Some(400), None), Some(4));
        // Everything still fresh ⇒ nothing expires.
        assert_eq!(log.retention_cutoff(1_000, Some(2_000), None), None);
    }

    #[test]
    fn time_policy_stops_at_first_fresh_batch() {
        // An old batch AFTER a fresh one must not expire (prefix-only).
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), recs_at(900, 1)).unwrap();
        log.append(BatchMeta::plain(), recs_at(0, 1)).unwrap(); // out of order
        assert_eq!(log.retention_cutoff(1_000, Some(500), None), None);
    }

    #[test]
    fn size_policy_trims_to_budget() {
        let mut log = PartitionLog::new();
        for i in 0..10 {
            log.append(BatchMeta::plain(), recs_at(i, 1)).unwrap();
        }
        let total = log.size_bytes();
        let one_batch = total / 10;
        let cutoff = log.retention_cutoff(100, None, Some(total - one_batch)).expect("must trim");
        assert!(cutoff >= 1);
        log.truncate_prefix(cutoff);
        assert!(log.size_bytes() <= total - one_batch + one_batch);
    }

    #[test]
    fn open_transaction_pins_the_prefix() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::transactional(1, 0, 0), recs_at(0, 2)).unwrap();
        log.append(BatchMeta::plain(), recs_at(0, 2)).unwrap();
        // LSO = 0 while the txn is open: nothing is stable to expire.
        assert_eq!(log.retention_cutoff(1_000_000, Some(1), None), None);
        log.append_control(1, 0, ControlType::Commit, 0).unwrap();
        assert!(log.retention_cutoff(1_000_000, Some(1), None).is_some());
    }

    #[test]
    fn cutoff_never_below_log_start() {
        let mut log = PartitionLog::new();
        log.append(BatchMeta::plain(), recs_at(0, 4)).unwrap();
        log.truncate_prefix(4);
        assert_eq!(log.retention_cutoff(1_000_000, Some(1), None), None);
    }
}
