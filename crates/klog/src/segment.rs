//! Log segments: batches grouped into rollable units.
//!
//! Kafka splits each partition log into segments so retention and compaction
//! can drop or rewrite whole files. We keep the same structure in memory:
//! a [`SegmentList`] of segments, each covering a contiguous offset range,
//! rolled when a segment exceeds a record-count threshold. Prefix truncation
//! (repartition-topic purging, retention) drops whole segments cheaply and
//! trims the head segment.

use crate::batch::StoredBatch;
use crate::Offset;

/// Maximum records per segment before rolling. Small enough that unit tests
/// exercise multi-segment logs without huge appends.
pub const SEGMENT_ROLL_RECORDS: usize = 4096;

/// One segment: a run of batches with contiguous offsets.
#[derive(Debug, Clone, Default)]
pub struct Segment {
    batches: Vec<StoredBatch>,
    record_count: usize,
}

impl Segment {
    fn base_offset(&self) -> Option<Offset> {
        self.batches.first().map(StoredBatch::base_offset)
    }

    fn last_offset(&self) -> Option<Offset> {
        self.batches.last().map(StoredBatch::last_offset)
    }

    fn is_full(&self) -> bool {
        self.record_count >= SEGMENT_ROLL_RECORDS
    }
}

/// An ordered list of segments forming one partition log's storage.
#[derive(Debug, Clone)]
pub struct SegmentList {
    segments: Vec<Segment>,
}

impl Default for SegmentList {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentList {
    /// A list with a single empty active segment.
    pub fn new() -> Self {
        Self { segments: vec![Segment::default()] }
    }

    /// Rebuild from a flat batch list (compaction output). Batches must be
    /// in increasing offset order.
    pub fn from_batches(batches: Vec<StoredBatch>) -> Self {
        let mut list = Self::new();
        for b in batches {
            list.append(b);
        }
        list
    }

    /// Append a batch, rolling to a new segment when the active one is full.
    pub fn append(&mut self, batch: StoredBatch) {
        debug_assert!(!batch.is_empty());
        let active = self.segments.last_mut().expect("at least one segment");
        if active.is_full() && !active.batches.is_empty() {
            kobs::count("klog.segment_rolls", 1);
            kobs::event!(
                batch.max_timestamp(),
                "klog",
                "segment_roll",
                segments = self.segments.len() + 1,
                base_offset = batch.base_offset(),
            );
            self.segments.push(Segment::default());
        }
        let active = self.segments.last_mut().expect("at least one segment");
        active.record_count += batch.len();
        active.batches.push(batch);
    }

    /// Earliest retained offset, if any batch is retained.
    pub fn log_start(&self) -> Option<Offset> {
        self.segments.iter().find_map(Segment::base_offset)
    }

    /// Last retained offset.
    pub fn last_offset(&self) -> Option<Offset> {
        self.segments.iter().rev().find_map(Segment::last_offset)
    }

    /// Number of segments (for tests and metrics).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Iterate batches whose last offset is `>= from`, in offset order.
    pub fn iter_from(&self, from: Offset) -> impl Iterator<Item = &StoredBatch> {
        // Skip whole segments below `from` first.
        let start_seg = self
            .segments
            .iter()
            .position(|s| s.last_offset().is_some_and(|lo| lo >= from))
            .unwrap_or(self.segments.len());
        self.segments[start_seg..]
            .iter()
            .flat_map(|s| s.batches.iter())
            .filter(move |b| b.last_offset() >= from)
    }

    /// Drop whole batches entirely below `new_start`; whole segments are
    /// dropped in O(1) per segment.
    pub fn truncate_prefix(&mut self, new_start: Offset) {
        self.segments.retain(|s| s.last_offset().is_none_or(|lo| lo >= new_start));
        if self.segments.is_empty() {
            self.segments.push(Segment::default());
            return;
        }
        let head = &mut self.segments[0];
        let before: usize = head.batches.iter().map(StoredBatch::len).sum();
        head.batches.retain(|b| b.last_offset() >= new_start);
        let after: usize = head.batches.iter().map(StoredBatch::len).sum();
        head.record_count -= before - after;
    }

    /// Drop all batches with any offset `>= to` (suffix truncation). Batches
    /// straddling `to` are dropped whole (matches Kafka, which truncates at
    /// batch boundaries).
    pub fn truncate_suffix(&mut self, to: Offset) {
        for s in &mut self.segments {
            let before: usize = s.batches.iter().map(StoredBatch::len).sum();
            s.batches.retain(|b| b.last_offset() < to);
            let after: usize = s.batches.iter().map(StoredBatch::len).sum();
            s.record_count -= before - after;
        }
        self.segments.retain(|s| !s.batches.is_empty());
        if self.segments.is_empty() {
            self.segments.push(Segment::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchMeta;
    use crate::record::Record;

    fn batch(base: Offset, n: usize) -> StoredBatch {
        StoredBatch {
            meta: BatchMeta::plain(),
            entries: (0..n).map(|i| (base + i as i64, Record::of_str("k", "v", 0))).collect(),
        }
    }

    #[test]
    fn append_and_iterate() {
        let mut l = SegmentList::new();
        l.append(batch(0, 3));
        l.append(batch(3, 2));
        let offsets: Vec<Offset> =
            l.iter_from(0).flat_map(|b| b.entries.iter().map(|(o, _)| *o)).collect();
        assert_eq!(offsets, vec![0, 1, 2, 3, 4]);
        assert_eq!(l.log_start(), Some(0));
        assert_eq!(l.last_offset(), Some(4));
    }

    #[test]
    fn iter_from_skips_earlier_batches() {
        let mut l = SegmentList::new();
        l.append(batch(0, 3));
        l.append(batch(3, 3));
        let first = l.iter_from(4).next().unwrap();
        assert_eq!(first.base_offset(), 3, "straddling batch included");
        assert_eq!(l.iter_from(6).count(), 0);
    }

    #[test]
    fn rolls_segments_when_full() {
        let mut l = SegmentList::new();
        let mut off = 0;
        while l.segment_count() < 3 {
            l.append(batch(off, 512));
            off += 512;
        }
        assert!(l.segment_count() >= 3);
        // Iteration still spans all segments.
        let total: usize = l.iter_from(0).map(StoredBatch::len).sum();
        assert_eq!(total, off as usize);
    }

    #[test]
    fn truncate_prefix_drops_whole_segments() {
        let mut l = SegmentList::new();
        for i in 0..4 {
            l.append(batch(i * SEGMENT_ROLL_RECORDS as i64, SEGMENT_ROLL_RECORDS));
        }
        let cutoff = 2 * SEGMENT_ROLL_RECORDS as i64;
        l.truncate_prefix(cutoff);
        assert_eq!(l.log_start(), Some(cutoff));
    }

    #[test]
    fn truncate_prefix_to_everything_leaves_empty_list() {
        let mut l = SegmentList::new();
        l.append(batch(0, 5));
        l.truncate_prefix(100);
        assert_eq!(l.log_start(), None);
        assert_eq!(l.iter_from(0).count(), 0);
        // Still appendable.
        l.append(batch(5, 1));
        assert_eq!(l.log_start(), Some(5));
    }

    #[test]
    fn truncate_suffix_drops_tail() {
        let mut l = SegmentList::new();
        l.append(batch(0, 3));
        l.append(batch(3, 3));
        l.truncate_suffix(3);
        assert_eq!(l.last_offset(), Some(2));
        l.truncate_suffix(0);
        assert_eq!(l.last_offset(), None);
    }

    #[test]
    fn from_batches_round_trips() {
        let batches = vec![batch(0, 2), batch(2, 2)];
        let l = SegmentList::from_batches(batches.clone());
        let got: Vec<&StoredBatch> = l.iter_from(0).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], &batches[0]);
    }

    // ---- segment-roll boundary arithmetic -------------------------------
    // These pin the exact behaviour at roll boundaries so the disk backend
    // (which mirrors the same roll rule) can rely on it.

    #[test]
    fn empty_fresh_list_has_no_offsets() {
        let l = SegmentList::new();
        assert_eq!(l.segment_count(), 1);
        assert_eq!(l.log_start(), None);
        assert_eq!(l.last_offset(), None);
        assert_eq!(l.iter_from(i64::MIN).count(), 0);
    }

    #[test]
    fn exactly_full_segment_rolls_lazily_on_next_append() {
        // Filling a segment to exactly SEGMENT_ROLL_RECORDS must NOT create
        // an empty trailing segment; the roll happens on the next append, so
        // a freshly-rolled segment is never empty.
        let n = SEGMENT_ROLL_RECORDS;
        let mut l = SegmentList::new();
        l.append(batch(0, n));
        assert_eq!(l.segment_count(), 1, "roll is lazy");
        assert_eq!(l.last_offset(), Some(n as i64 - 1));
        l.append(batch(n as i64, 1));
        assert_eq!(l.segment_count(), 2);
        // The new segment's first batch IS the rolled-in batch — its base
        // offset equals the previous log end, with no gap and no overlap.
        assert_eq!(l.segments[1].base_offset(), Some(n as i64));
        assert_eq!(l.segments[0].last_offset(), Some(n as i64 - 1));
        assert_eq!(l.last_offset(), Some(n as i64));
    }

    #[test]
    fn truncate_suffix_at_exact_segment_base_drops_whole_segment() {
        let n = SEGMENT_ROLL_RECORDS as i64;
        let mut l = SegmentList::new();
        l.append(batch(0, SEGMENT_ROLL_RECORDS));
        l.append(batch(n, SEGMENT_ROLL_RECORDS));
        assert_eq!(l.segment_count(), 2);
        l.truncate_suffix(n);
        assert_eq!(l.segment_count(), 1);
        assert_eq!(l.last_offset(), Some(n - 1));
        assert_eq!(l.log_start(), Some(0));
    }

    #[test]
    fn truncate_prefix_at_exact_segment_base_drops_whole_head() {
        let n = SEGMENT_ROLL_RECORDS as i64;
        let mut l = SegmentList::new();
        l.append(batch(0, SEGMENT_ROLL_RECORDS));
        l.append(batch(n, SEGMENT_ROLL_RECORDS));
        l.truncate_prefix(n);
        assert_eq!(l.segment_count(), 1);
        assert_eq!(l.log_start(), Some(n));
        assert_eq!(l.last_offset(), Some(2 * n - 1));
    }

    #[test]
    fn truncate_to_empty_then_refill_rolls_correctly() {
        let n = SEGMENT_ROLL_RECORDS;
        let mut l = SegmentList::new();
        l.append(batch(0, n));
        l.truncate_suffix(0);
        // Back to a single empty segment with no offsets.
        assert_eq!(l.segment_count(), 1);
        assert_eq!(l.log_start(), None);
        assert_eq!(l.last_offset(), None);
        // Refill at a later base: the empty segment absorbs a full batch
        // without rolling (it was empty), then rolls on the next one.
        l.append(batch(100, n));
        assert_eq!(l.segment_count(), 1);
        l.append(batch(100 + n as i64, 1));
        assert_eq!(l.segment_count(), 2);
        assert_eq!(l.log_start(), Some(100));
        assert_eq!(l.last_offset(), Some(100 + n as i64));
    }

    #[test]
    fn iter_from_exact_roll_boundary_starts_in_second_segment() {
        let n = SEGMENT_ROLL_RECORDS as i64;
        let mut l = SegmentList::new();
        l.append(batch(0, SEGMENT_ROLL_RECORDS));
        l.append(batch(n, SEGMENT_ROLL_RECORDS));
        let got: Vec<Offset> = l.iter_from(n).map(StoredBatch::base_offset).collect();
        assert_eq!(got, vec![n]);
        // One before the boundary still includes the first segment's batch.
        let got: Vec<Offset> = l.iter_from(n - 1).map(StoredBatch::base_offset).collect();
        assert_eq!(got, vec![0, n]);
    }
}
