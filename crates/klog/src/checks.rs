//! Protocol invariant layer (§4.1, §4.2): runtime checks on the log and
//! transaction protocol that record — rather than panic on — violations.
//!
//! The paper's correctness argument rests on a handful of per-partition
//! invariants that every broker-side mutation must preserve:
//!
//! * **Sequence monotonicity** — an idempotent producer's batches append
//!   with consecutive sequence numbers per (producer id, epoch) (§4.1),
//! * **Epoch fencing** — once a newer epoch is observed for a producer id,
//!   older epochs can never append or commit again (§4.1, §4.2.1),
//! * **Offset ordering** — `last stable offset ≤ high watermark ≤ log end
//!   offset` at every observation point (§4.2.2, read-committed fetches),
//! * **Transaction state-machine legality** — markers are only written from
//!   a `Prepare*` state and coordinator state only moves along legal edges
//!   (§4.2.1, Figure 5).
//!
//! Production code asserts these with the [`crate::invariant!`] macro. When the
//! (default-on) `invariants` feature is enabled, a failed check records a
//! [`Violation`] in the process-global [sink](take_violations); tests drain
//! the sink after fault-injection runs and assert it is empty. When the
//! feature is disabled the checks compile to nothing. Recording instead of
//! panicking means a single violation does not mask others behind it and
//! property tests can shrink on the *observable* outcome.

use std::fmt;
use std::sync::Mutex;

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable kebab-case invariant name (e.g. `"epoch-fencing"`).
    pub invariant: &'static str,
    /// Human-readable description of the violating state.
    pub context: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant[{}]: {}", self.invariant, self.context)
    }
}

static SINK: Mutex<Vec<Violation>> = Mutex::new(Vec::new());

fn sink() -> std::sync::MutexGuard<'static, Vec<Violation>> {
    // A poisoned sink still holds valid data; keep recording through it.
    SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Record a violation in the global sink. Called by [`crate::invariant!`]; call
/// directly only when the failing condition is a match arm rather than a
/// boolean expression.
pub fn record_violation(invariant: &'static str, context: String) {
    sink().push(Violation { invariant, context });
}

/// Drain and return all violations recorded so far.
pub fn take_violations() -> Vec<Violation> {
    std::mem::take(&mut *sink())
}

/// Number of violations currently recorded (without draining).
pub fn violation_count() -> usize {
    sink().len()
}

/// Assert a protocol invariant: when `cond` is false, record a
/// [`Violation`] named `name` with a formatted context message.
///
/// Compiles to nothing unless the `invariants` feature is enabled (it is
/// by default), so hot paths pay no cost in stripped builds.
#[cfg(feature = "invariants")]
#[macro_export]
macro_rules! invariant {
    ($cond:expr, $name:expr, $($fmt:tt)+) => {
        if !($cond) {
            $crate::checks::record_violation($name, format!($($fmt)+));
        }
    };
}

/// Disabled-feature form of [`crate::invariant!`]: evaluates nothing, but still
/// "uses" the message arguments (inside a never-called closure) so call
/// sites compile warning-free with the feature off.
#[cfg(not(feature = "invariants"))]
#[macro_export]
macro_rules! invariant {
    ($cond:expr, $name:expr, $($fmt:tt)+) => {
        _ = || ($name, format_args!($($fmt)+));
    };
}

/// Serializes tests that drain the process-global sink, so parallel test
/// threads cannot steal each other's recorded violations.
#[cfg(test)]
pub(crate) static TEST_SINK_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain() {
        let _serial = TEST_SINK_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        take_violations();
        record_violation("test-check", "something broke".into());
        assert_eq!(violation_count(), 1);
        let v = take_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "test-check");
        assert_eq!(v[0].to_string(), "invariant[test-check]: something broke");
        assert_eq!(violation_count(), 0);
    }

    #[test]
    fn macro_records_only_on_failure() {
        let _serial = TEST_SINK_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        take_violations();
        invariant!(1 + 1 == 2, "arithmetic", "should not fire");
        assert_eq!(violation_count(), 0);
        invariant!(1 + 1 == 3, "arithmetic", "expected {} got {}", 3, 2);
        let v = take_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].context, "expected 3 got 2");
    }
}
