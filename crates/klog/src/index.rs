//! Timestamp → offset index.
//!
//! Mirrors Kafka's sparse time index: entries are `(max_timestamp_so_far,
//! base_offset)` pairs with strictly increasing timestamps, appended only
//! when a batch advances the partition's max timestamp. Lookup returns the
//! earliest indexed offset whose timestamp is `>=` the target — the starting
//! point for a timestamp-based seek (`offsetsForTimes` in Kafka).

use crate::Offset;

/// Sparse, monotone time index for one partition.
#[derive(Debug, Clone, Default)]
pub struct TimeIndex {
    /// `(timestamp, offset)`, strictly increasing in both fields.
    entries: Vec<(i64, Offset)>,
}

impl TimeIndex {
    /// An empty time index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an entry if `ts` advances the index's max timestamp.
    pub fn maybe_add(&mut self, ts: i64, offset: Offset) {
        match self.entries.last() {
            Some(&(last_ts, _)) if ts <= last_ts => {}
            _ => self.entries.push((ts, offset)),
        }
    }

    /// Earliest indexed offset with timestamp `>= ts`, or `None` when every
    /// indexed timestamp is smaller.
    pub fn lookup(&self, ts: i64) -> Option<Offset> {
        let idx = self.entries.partition_point(|&(t, _)| t < ts);
        self.entries.get(idx).map(|&(_, o)| o)
    }

    /// Number of index entries (sparseness check in tests).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries have been indexed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_lookup_is_none() {
        assert_eq!(TimeIndex::new().lookup(0), None);
    }

    #[test]
    fn monotone_entries_only() {
        let mut idx = TimeIndex::new();
        idx.maybe_add(100, 0);
        idx.maybe_add(50, 5); // out-of-order timestamp: not indexed
        idx.maybe_add(100, 7); // equal: not indexed
        idx.maybe_add(200, 9);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn lookup_finds_first_at_or_after() {
        let mut idx = TimeIndex::new();
        idx.maybe_add(100, 0);
        idx.maybe_add(200, 10);
        idx.maybe_add(300, 20);
        assert_eq!(idx.lookup(0), Some(0));
        assert_eq!(idx.lookup(100), Some(0));
        assert_eq!(idx.lookup(101), Some(10));
        assert_eq!(idx.lookup(300), Some(20));
        assert_eq!(idx.lookup(301), None);
    }
}
