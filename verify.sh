#!/usr/bin/env bash
# Full verification gate for the workspace. Run from the repo root.
#
#   ./verify.sh          # everything (fmt, clippy, tests, static analysis demo)
#   ./verify.sh --quick  # skip the workspace test suite, keep the fast gates
#
# Exits non-zero on the first failing gate.
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
fi

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --all --check"
cargo fmt --all --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
  step "cargo test --workspace -q"
  cargo test --workspace -q
else
  step "cargo test -q (tier-1 only, --quick)"
  cargo test -q
fi

step "cargo run --bin kanalyze (topology static verifier demo)"
cargo run -q --bin kanalyze

step "detlint (determinism lint over replay-critical crates)"
cargo run -q --release -p kcheck --bin detlint

if [[ "$QUICK" -eq 0 ]]; then
  step "kcheck --quick (exhaustive model check of the EOS commit protocol)"
  cargo run -q --release -p kcheck --bin kcheck -- --quick
fi

step "all gates passed"
