//! Named deterministic-simulation scenarios (the repo's randomized
//! fault-schedule test battery).
//!
//! Every scenario is a seed (plus optional forced profile / step count)
//! fed to `simkit::simtest::run`. A failure panics with the full run
//! report and the exact replay command:
//! `cargo run -p simkit --bin simtest -- --seed N --steps M`.

use simkit::simtest::{run, Profile, SimConfig};
use simkit::FaultPoint;

#[test]
fn same_seed_replays_byte_identically() {
    let cfg = SimConfig::new(42);
    let first = format!("{}", run(&cfg));
    let second = format!("{}", run(&cfg));
    assert_eq!(first, second, "a seed must replay to a byte-identical report");
}

#[test]
fn count_profile_survives_random_faults() {
    let report = run(&SimConfig::new(101).with_profile(Profile::Count));
    report.assert_passed();
    assert!(report.records_fed > 0, "workload fed nothing:\n{report}");
    assert!(report.output_records > 0, "no committed output:\n{report}");
}

#[test]
fn windowed_profile_survives_broker_outages() {
    let report = run(&SimConfig::new(202).with_profile(Profile::Windowed).with_steps(600));
    report.assert_passed();
}

#[test]
fn suppressed_profile_emits_single_finals_under_churn() {
    let report = run(&SimConfig::new(303).with_profile(Profile::Suppressed).with_steps(600));
    report.assert_passed();
}

#[test]
fn long_chaos_run_converges() {
    run(&SimConfig::new(404).with_steps(1000)).assert_passed();
}

#[test]
fn minimal_run_drains_cleanly() {
    run(&SimConfig::new(7).with_steps(25)).assert_passed();
}

#[test]
fn smoke_sweep_seeds_0_to_19() {
    for seed in 0..20 {
        run(&SimConfig::new(seed)).assert_passed();
    }
}

/// The parallel scheduler must not cost simtest its headline property:
/// for a fixed seed, `--workers 4` replays byte-identically — the virtual
/// scheduler's steal schedule is itself seed-derived, so the whole report
/// (outputs, store hashes, fault log, metrics) is a pure function of the
/// seed. 25 seeds, two runs each, compared as rendered bytes.
#[test]
fn twenty_five_seed_sweep_replays_byte_identically_with_four_workers() {
    for seed in 0..25 {
        let cfg = SimConfig::new(seed).with_workers(4);
        let first = run(&cfg);
        first.assert_passed();
        let second = run(&cfg);
        let (a, b) = (format!("{first}"), format!("{second}"));
        assert_eq!(a, b, "seed {seed}: --workers 4 replay diverged");
        assert!(a.contains("workers=4"), "report must record the worker count:\n{a}");
        assert!(
            first.repro().contains("--workers 4"),
            "repro command must carry the worker count: {}",
            first.repro()
        );
    }
}

/// The scheduler sits on simtest's replay-critical path, so it must stay
/// clean under detlint's determinism rules (no wall clock, no entropy, no
/// unordered iteration) — its busy-time instrumentation is allowed only
/// through explicit `detlint:allow` escapes that never feed control flow.
#[test]
fn detlint_is_clean_over_the_scheduler_module() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join("crates/core/src/processor/scheduler.rs");
    let source = std::fs::read_to_string(&path).expect("scheduler module readable");
    let findings = kcheck::detlint::lint_source(std::path::Path::new("scheduler.rs"), &source);
    assert!(findings.is_empty(), "scheduler module must stay detlint-clean: {findings:?}");
    // And the lint actually covers the scheduler's tree (guards against the
    // module moving out from under the repo-wide gate).
    let repo_findings = kcheck::detlint::lint_repo(root);
    assert!(repo_findings.is_empty(), "replay-critical trees must stay clean: {repo_findings:?}");
}

#[test]
fn fifty_seed_sweep_exercises_all_fault_points_and_cluster_events() {
    let mut injected = [0u64; 4];
    let original_points = [
        FaultPoint::ProduceAckLost,
        FaultPoint::ProduceRequestLost,
        FaultPoint::FetchResponseLost,
        FaultPoint::TxnRpcAckLost,
    ];
    let mut kills = 0u64;
    let mut restores = 0u64;
    let mut crashes = 0u64;
    let mut restarts = 0u64;
    let mut rebalances = 0u64;
    for seed in 0..50 {
        let report = run(&SimConfig::new(seed));
        report.assert_passed();
        for (slot, point) in injected.iter_mut().zip(original_points) {
            *slot += report.injected(point);
        }
        kills += report.events.broker_kills;
        restores += report.events.broker_restores;
        crashes += report.events.instance_crashes;
        restarts += report.events.instance_restarts;
        rebalances += report.events.forced_rebalances;
    }
    for (slot, point) in injected.iter().zip(original_points) {
        assert!(*slot > 0, "{} never injected across the sweep", point.name());
    }
    assert!(kills > 0, "no broker was ever killed across the sweep");
    assert!(restores > 0, "no broker was ever restored across the sweep");
    assert!(crashes > 0, "no instance ever crashed across the sweep");
    assert!(restarts > 0, "no instance ever restarted across the sweep");
    assert!(rebalances > 0, "no forced rebalance across the sweep");
}

/// Cooperative rebalancing under the churn fault classes (rolling restarts,
/// fleet grow/shrink, coordinator-forced rebalances — all debounced) must
/// preserve every oracle AND simtest's headline replay property: for a fixed
/// seed, `--churn --workers 4` is byte-identical across runs. 25 seeds, two
/// runs each, compared as rendered bytes.
#[test]
fn twenty_five_seed_churn_sweep_replays_byte_identically_with_four_workers() {
    let mut rolling = 0u64;
    let mut adds = 0u64;
    let mut removes = 0u64;
    for seed in 0..25 {
        let cfg = SimConfig::new(seed).with_workers(4).with_churn();
        let first = run(&cfg);
        first.assert_passed();
        let second = run(&cfg);
        let (a, b) = (format!("{first}"), format!("{second}"));
        assert_eq!(a, b, "seed {seed}: churn replay diverged at --workers 4");
        assert!(
            first.repro().contains("--churn"),
            "repro command must carry the churn flag: {}",
            first.repro()
        );
        rolling += first.events.rolling_restarts;
        adds += first.events.instance_adds;
        removes += first.events.instance_removes;
    }
    assert!(rolling > 0, "no rolling restart fired across the churn sweep");
    assert!(adds > 0, "no instance was ever added across the churn sweep");
    assert!(removes > 0, "no instance was ever removed across the churn sweep");
}
