//! Consistency tests (§2.1, §4, Figure 1): crash/recovery, duplicate
//! suppression, zombie fencing, and task migration with state restore.
//!
//! The central scenario is Figure 1: a stateful processor crashes after
//! updating its state but before acknowledging (committing) its input. At
//! least-once processing double-updates the state on recovery; exactly-once
//! does not.

use bytes::Bytes;
use kbroker::{Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig};
use kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig, StreamsError};
use simkit::{FaultDecision, FaultPlan, FaultPoint, ManualClock};
use std::collections::HashMap;
use std::sync::Arc;

/// A stateful per-key counter: input "events" → output "counts".
fn counting_topology() -> Arc<kstreams::topology::Topology> {
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("events")
        .group_by_key()
        .count("event-counts")
        .to_stream()
        .to("counts");
    Arc::new(builder.build().unwrap())
}

struct Setup {
    cluster: Cluster,
    clock: ManualClock,
}

fn setup_with(faults: FaultPlan) -> Setup {
    let clock = ManualClock::new();
    let cluster =
        Cluster::builder().brokers(3).replication(3).clock(clock.shared()).faults(faults).build();
    cluster.create_topic("events", TopicConfig::new(1)).unwrap();
    cluster.create_topic("counts", TopicConfig::new(1)).unwrap();
    Setup { cluster, clock }
}

fn setup() -> Setup {
    setup_with(FaultPlan::none())
}

fn send_events(cluster: &Cluster, n: usize, ts0: i64) {
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    for i in 0..n {
        p.send(
            "events",
            Some("key".to_string().to_bytes()),
            Some(format!("e{i}").to_bytes()),
            ts0 + i as i64,
        )
        .unwrap();
    }
    p.flush().unwrap();
}

/// Latest committed count per key from the output topic, plus the total
/// record count (duplicates visible in the total).
fn read_output(cluster: &Cluster) -> (HashMap<String, i64>, usize) {
    let mut consumer =
        Consumer::new(cluster.clone(), "verify", ConsumerConfig::default().read_committed());
    consumer.assign(cluster.partitions_of("counts").unwrap()).unwrap();
    let mut latest = HashMap::new();
    let mut total = 0;
    loop {
        let batch = consumer.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            let k = String::from_bytes(rec.key.as_ref().unwrap()).unwrap();
            let v = i64::from_bytes(rec.value.as_ref().unwrap()).unwrap();
            latest.insert(k, v);
            total += 1;
        }
    }
    (latest, total)
}

fn eos_config() -> StreamsConfig {
    StreamsConfig::new("counter-app")
        .exactly_once()
        .with_commit_interval_ms(10)
        .with_producer_batch_size(1)
}

fn alos_config() -> StreamsConfig {
    StreamsConfig::new("counter-app").with_commit_interval_ms(10).with_producer_batch_size(1)
}

fn run_app(setup: &Setup, config: StreamsConfig, instance: &str, steps: usize) {
    let mut app =
        KafkaStreamsApp::new(setup.cluster.clone(), counting_topology(), config, instance);
    app.start().unwrap();
    for _ in 0..steps {
        app.step().unwrap();
        setup.clock.advance(10);
    }
    app.close().unwrap();
}

#[test]
fn figure1_alos_crash_double_updates_state() {
    let s = setup();
    send_events(&s.cluster, 3, 0);
    // Instance processes all 3 events, flushes outputs and changelog, but
    // crashes BEFORE committing offsets (Figure 1.b).
    {
        let mut app = KafkaStreamsApp::new(
            s.cluster.clone(),
            counting_topology(),
            // Huge commit interval: no commit ever happens before the crash.
            alos_config().with_commit_interval_ms(1_000_000),
            "instance-0",
        );
        app.start().unwrap();
        for _ in 0..5 {
            app.step().unwrap();
            s.clock.advance(10);
        }
        // Outputs/changelog are on the broker (batch size 1); offsets not
        // committed. Crash.
        app.crash();
    }
    // The crashed member's session expires; the group rebalances (§3.1).
    s.clock.advance(kbroker::group::SESSION_TIMEOUT_MS + 1);
    s.cluster.group_expire_members("counter-app");
    // Recovery (Figure 1.c): restores state (count = 3 from the changelog),
    // then re-fetches from offset 0 and re-processes.
    run_app(&s, alos_config(), "instance-1", 10);
    let (latest, total) = read_output(&s.cluster);
    assert_eq!(latest["key"], 6, "at-least-once double-counts after the crash");
    assert!(total > 3, "duplicate output records visible");
}

#[test]
fn figure1_eos_crash_is_exactly_once() {
    let s = setup();
    send_events(&s.cluster, 3, 0);
    {
        let mut app = KafkaStreamsApp::new(
            s.cluster.clone(),
            counting_topology(),
            eos_config().with_commit_interval_ms(1_000_000),
            "instance-0",
        );
        app.start().unwrap();
        for _ in 0..5 {
            app.step().unwrap();
            s.clock.advance(10);
        }
        app.crash();
    }
    // The crashed instance's transaction is still open; a same-id restart
    // would fence it instantly, but here a *different* instance takes over,
    // so the coordinator aborts it on timeout (§4.2.2), and the dead
    // member's group session expires.
    s.clock.advance(s.cluster.default_txn_timeout_ms() + 1);
    assert_eq!(s.cluster.abort_expired_transactions(), 1);
    s.cluster.group_expire_members("counter-app");

    run_app(&s, eos_config(), "instance-1", 20);
    let (latest, total) = read_output(&s.cluster);
    assert_eq!(latest["key"], 3, "exactly-once: state reflects each record once");
    assert_eq!(total, 3, "no duplicate visible outputs");
}

#[test]
fn eos_same_instance_restart_fences_and_recovers_immediately() {
    let s = setup();
    send_events(&s.cluster, 3, 0);
    {
        let mut app = KafkaStreamsApp::new(
            s.cluster.clone(),
            counting_topology(),
            eos_config().with_commit_interval_ms(1_000_000),
            "instance-0",
        );
        app.start().unwrap();
        for _ in 0..5 {
            app.step().unwrap();
            s.clock.advance(10);
        }
        app.crash();
    }
    // Same instance id restarts: init_transactions aborts the dangling
    // transaction and bumps the epoch — no timeout wait needed (§4.2.1).
    run_app(&s, eos_config(), "instance-0", 20);
    let (latest, total) = read_output(&s.cluster);
    assert_eq!(latest["key"], 3);
    assert_eq!(total, 3);
}

#[test]
fn committed_work_survives_crash_without_reprocessing() {
    let s = setup();
    send_events(&s.cluster, 3, 0);
    // First instance processes AND commits, then crashes.
    {
        let mut app = KafkaStreamsApp::new(
            s.cluster.clone(),
            counting_topology(),
            eos_config(),
            "instance-0",
        );
        app.start().unwrap();
        for _ in 0..10 {
            app.step().unwrap();
            s.clock.advance(10);
        }
        app.crash();
    }
    // Recovery resumes from the committed offsets: no reprocessing.
    send_events(&s.cluster, 2, 100);
    run_app(&s, eos_config(), "instance-0", 20);
    let (latest, total) = read_output(&s.cluster);
    assert_eq!(latest["key"], 5);
    assert_eq!(total, 5, "each input produced exactly one output");
}

#[test]
fn zombie_instance_cannot_commit() {
    let s = setup();
    send_events(&s.cluster, 2, 0);
    let mut old = KafkaStreamsApp::new(
        s.cluster.clone(),
        counting_topology(),
        eos_config().with_commit_interval_ms(1_000_000),
        "instance-0",
    );
    old.start().unwrap();
    old.step().unwrap(); // processes, transaction open, nothing committed

    // A new incarnation of the same instance registers (§2.1's zombie
    // scenario: the old one is presumed dead but still runs).
    let mut new =
        KafkaStreamsApp::new(s.cluster.clone(), counting_topology(), eos_config(), "instance-0");
    new.start().unwrap();

    // The zombie tries to continue: its producer epoch is stale.
    let err = old.commit().unwrap_err();
    assert!(matches!(err, StreamsError::Fenced(_)), "zombie must be fenced, got {err:?}");

    // The new incarnation processes everything exactly once.
    for _ in 0..20 {
        new.step().unwrap();
        s.clock.advance(10);
    }
    new.close().unwrap();
    let (latest, total) = read_output(&s.cluster);
    assert_eq!(latest["key"], 2);
    assert_eq!(total, 2);
}

#[test]
fn lost_acks_with_eos_do_not_duplicate() {
    // Every 3rd produce ack vanishes (§2.1's RPC failure); idempotent
    // sequences absorb the retries end-to-end.
    let faults = FaultPlan::seeded(7).with_ack_loss(FaultPoint::ProduceAckLost, 0.34);
    let s = setup_with(faults);
    send_events(&s.cluster, 10, 0);
    s.cluster.faults().disable(); // only the app's own sends see faults below
    s.cluster.faults().enable();
    run_app(&s, eos_config(), "instance-0", 30);
    let (latest, total) = read_output(&s.cluster);
    assert_eq!(latest["key"], 10);
    assert_eq!(total, 10, "retried appends deduplicated by sequence numbers");
}

#[test]
fn lost_acks_without_idempotence_duplicate_outputs() {
    // Control experiment for the one above: at-least-once + scripted ack
    // loss on the app's first output append ⇒ a duplicate output record.
    let faults = FaultPlan::none().script(FaultPoint::ProduceAckLost, 2, FaultDecision::DropAck);
    let s = setup_with(faults);
    // Fault op #1 is the test generator's send; #2 is the app's first
    // output/changelog append.
    send_events(&s.cluster, 1, 0);
    run_app(&s, alos_config(), "instance-0", 10);
    let (_, total) = read_output(&s.cluster);
    // Depending on whether the changelog or the output append hit the
    // fault, the output topic has 1 or 2 records — but the broker level
    // *must* show a duplicated append somewhere.
    let events = s.cluster.topic_record_count("events").unwrap();
    assert_eq!(events, 1);
    let outputs = s.cluster.topic_record_count("counts").unwrap();
    let changelog: usize =
        s.cluster.topic_record_count("counter-app-event-counts-changelog").unwrap();
    assert!(
        outputs + changelog > 2,
        "expected a duplicated append, got outputs={outputs} changelog={changelog} total={total}"
    );
}

#[test]
fn task_migration_restores_state_from_changelog() {
    let s = setup();
    send_events(&s.cluster, 4, 0);
    // Instance A processes and commits.
    {
        let mut a = KafkaStreamsApp::new(
            s.cluster.clone(),
            counting_topology(),
            eos_config(),
            "instance-a",
        );
        a.start().unwrap();
        for _ in 0..10 {
            a.step().unwrap();
            s.clock.advance(10);
        }
        a.close().unwrap(); // graceful: leaves the group
    }
    // Instance B starts fresh on another "host": must restore count=4 by
    // replaying the changelog (§3.3), then continue.
    send_events(&s.cluster, 1, 50);
    let mut b =
        KafkaStreamsApp::new(s.cluster.clone(), counting_topology(), eos_config(), "instance-b");
    b.start().unwrap();
    for _ in 0..10 {
        b.step().unwrap();
        s.clock.advance(10);
    }
    assert!(b.metrics().restore_records >= 1, "state was restored by replay");
    assert_eq!(
        b.query_kv("event-counts", &"key".to_string().to_bytes())
            .map(|b| i64::from_bytes(&b).unwrap()),
        Some(5),
        "restored state continued from 4 to 5"
    );
    b.close().unwrap();
    let (latest, _) = read_output(&s.cluster);
    assert_eq!(latest["key"], 5);
}

#[test]
fn broker_failure_is_transparent_to_the_app() {
    let s = setup();
    send_events(&s.cluster, 3, 0);
    let mut app =
        KafkaStreamsApp::new(s.cluster.clone(), counting_topology(), eos_config(), "instance-0");
    app.start().unwrap();
    for _ in 0..5 {
        app.step().unwrap();
        s.clock.advance(10);
    }
    // Kill the leader of everything mid-run; replication + coordinator
    // failover keep the pipeline going (§4 intro, §4.2.1).
    s.cluster.kill_broker(0);
    send_events(&s.cluster, 2, 100);
    for _ in 0..20 {
        app.step().unwrap();
        s.clock.advance(10);
    }
    app.close().unwrap();
    let (latest, total) = read_output(&s.cluster);
    assert_eq!(latest["key"], 5);
    assert_eq!(total, 5);
}

#[test]
fn interactive_query_reads_current_state() {
    let s = setup();
    send_events(&s.cluster, 7, 0);
    let mut app =
        KafkaStreamsApp::new(s.cluster.clone(), counting_topology(), eos_config(), "instance-0");
    app.start().unwrap();
    for _ in 0..10 {
        app.step().unwrap();
        s.clock.advance(10);
    }
    assert_eq!(
        app.query_kv("event-counts", &"key".to_string().to_bytes())
            .map(|b| i64::from_bytes(&b).unwrap()),
        Some(7)
    );
    assert_eq!(app.query_kv("event-counts", &"ghost".to_string().to_bytes()), None);
    app.close().unwrap();
}

#[test]
fn metrics_reflect_processing() {
    let s = setup();
    send_events(&s.cluster, 5, 0);
    let mut app =
        KafkaStreamsApp::new(s.cluster.clone(), counting_topology(), eos_config(), "instance-0");
    app.start().unwrap();
    for _ in 0..10 {
        app.step().unwrap();
        s.clock.advance(10);
    }
    let m = app.metrics();
    assert_eq!(m.records_processed, 5);
    assert_eq!(m.records_emitted, 5);
    assert!(m.transactions >= 1);
    assert!(m.commits >= m.transactions);
    assert_eq!(m.active_tasks, 1);
    app.close().unwrap();
}

#[test]
fn two_instances_split_work_and_agree() {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(3).replication(3).clock(clock.shared()).build();
    cluster.create_topic("events", TopicConfig::new(4)).unwrap();
    cluster.create_topic("counts", TopicConfig::new(4)).unwrap();
    // Keys spread over partitions.
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    for i in 0..40 {
        let key = format!("k{}", i % 8);
        p.send("events", Some(key.to_bytes()), Some(Bytes::from_static(b"x")), i).unwrap();
    }
    p.flush().unwrap();

    let mk = |id: &str| {
        KafkaStreamsApp::new(
            cluster.clone(),
            counting_topology(),
            StreamsConfig::new("counter-app").exactly_once().with_commit_interval_ms(10),
            id,
        )
    };
    let mut a = mk("a");
    let mut b = mk("b");
    a.start().unwrap();
    b.start().unwrap();
    for _ in 0..20 {
        a.step().unwrap();
        b.step().unwrap();
        clock.advance(10);
    }
    // Work was split.
    assert_eq!(a.task_ids().len(), 2);
    assert_eq!(b.task_ids().len(), 2);
    a.close().unwrap();
    b.close().unwrap();

    let (latest, total) = read_output(&cluster);
    assert_eq!(total, 40, "each input produced exactly one output");
    assert_eq!(latest.len(), 8);
    assert!(latest.values().all(|&c| c == 5), "{latest:?}");
}

#[test]
fn run_until_idle_drains_everything() {
    let s = setup();
    send_events(&s.cluster, 25, 0);
    let mut app =
        KafkaStreamsApp::new(s.cluster.clone(), counting_topology(), eos_config(), "instance-0");
    app.start().unwrap();
    // Interleave clock advances so the commit interval elapses.
    for _ in 0..5 {
        s.clock.advance(50);
        app.step().unwrap();
    }
    app.run_until_idle(3).unwrap();
    assert_eq!(app.metrics().records_processed, 25);
    app.close().unwrap();
    let (latest, total) = read_output(&s.cluster);
    assert_eq!(total, 25);
    assert_eq!(latest["key"], 25);
}

#[test]
fn consumer_group_offsets_fence_across_generations_in_eos() {
    // End-to-end: the generation check inside send_offsets_to_transaction
    // (§4.2.3 + zombie consumers of §2.1).
    let s = setup();
    send_events(&s.cluster, 2, 0);
    let mut old = KafkaStreamsApp::new(
        s.cluster.clone(),
        counting_topology(),
        eos_config().with_commit_interval_ms(1_000_000),
        "instance-0",
    );
    old.start().unwrap();
    old.step().unwrap(); // open transaction, offsets not yet committed
                         // Membership changes underneath (a second instance joins).
    let mut newcomer =
        KafkaStreamsApp::new(s.cluster.clone(), counting_topology(), eos_config(), "instance-1");
    newcomer.start().unwrap();
    // The old instance's next explicit commit is overtaken: with the public
    // commit() API this surfaces as an error...
    let err = old.commit().unwrap_err();
    assert!(
        matches!(err, StreamsError::Broker(kbroker::BrokerError::IllegalGeneration { .. })),
        "{err:?}"
    );
    // ...while step() handles it internally (abort + rebuild) and both
    // instances converge to exactly-once output.
    for _ in 0..20 {
        old.step().unwrap();
        newcomer.step().unwrap();
        s.clock.advance(10);
    }
    old.close().unwrap();
    newcomer.close().unwrap();
    let (latest, total) = read_output(&s.cluster);
    assert_eq!(total, 2);
    assert_eq!(latest["key"], 2);
}
