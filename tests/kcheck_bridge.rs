//! The counterexample→repro bridge, end to end: a model-checker
//! counterexample must come with a `simtest --script` schedule that the
//! simulation harness can parse and execute.
//!
//! The model and the simulated workload are different programs (the model
//! drives the protocol directly; simtest drives full streams apps), so the
//! scripted run is not expected to re-trigger the *model's* injected bug —
//! the contract under test is that every counterexample schedule is
//! machine-replayable: tokens parse, scripted faults inject, scripted
//! cluster events fire, and the run completes with its oracles.

use kcheck::{explore, Bug, Model, ModelConfig};
use simkit::simtest::{run, Script, SimConfig};

/// Extract the quoted token list out of a printed replay line, e.g.
/// `cargo run -p simkit --bin simtest -- --seed 0 --steps 300 --script "A@1;B@2"`.
fn script_tokens(schedule: &str) -> &str {
    let (_, rest) = schedule.split_once("--script \"").expect("schedule carries --script");
    rest.split_once('"').expect("closing quote").0
}

#[test]
fn injected_bug_counterexample_replays_through_simtest() {
    // Find a counterexample for a deliberately broken protocol: the commit
    // path "forgets" to persist PrepareCommit, so a coordinator crash
    // resurrects the transaction as Ongoing and a later fence aborts what
    // was already committed — conflicting markers.
    let cfg = ModelConfig {
        producers: 1,
        partitions: 1,
        txns_per_producer: 1,
        fault_budget: 2,
        bug: Some(Bug::SkipPrepare),
    };
    let result = explore(&Model::new(cfg), 96);
    let cex = result.violation.expect("injected bug must be caught");
    assert!(!cex.trace.is_empty(), "counterexample carries the action trace");

    // The printed schedule must parse as a simtest script…
    let tokens = script_tokens(&cex.schedule);
    let script = Script::parse(tokens).expect("kcheck emits parseable script tokens");
    assert!(
        !script.faults.is_empty() || !script.events.is_empty(),
        "a fault-driven counterexample maps to at least one scripted token; got `{tokens}`"
    );

    // …and the scripted run must execute end to end: scripted faults
    // replace the probabilistic plan, scripted events fire at their steps,
    // and the harness still converges and reports.
    let report = run(&SimConfig::new(0).with_steps(120).with_script(script.clone()));
    assert_eq!(report.seed, 0);
    let injected: u64 = report.fault_counts.iter().map(|(_, _, injected)| *injected).sum();
    assert_eq!(
        injected,
        script.faults.len() as u64,
        "every scripted fault (and nothing else) is injected"
    );
}

#[test]
fn clean_model_produces_no_counterexample_schedule() {
    let cfg = ModelConfig {
        producers: 1,
        partitions: 1,
        txns_per_producer: 1,
        fault_budget: 2,
        bug: None,
    };
    let result = explore(&Model::new(cfg), 96);
    assert!(result.violation.is_none(), "the real protocol has no 1x1 counterexample");
    assert!(result.exhausted());
}
