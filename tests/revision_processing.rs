//! Completeness tests (§2.2, §5, Figures 1 and 6): speculative emission,
//! revision records on out-of-order input, grace-period drops, window
//! garbage collection, and suppression.

use kbroker::{Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig};
use kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig, TimeWindows, Windowed};
use simkit::ManualClock;
use std::sync::Arc;

struct Setup {
    cluster: Cluster,
    clock: ManualClock,
}

fn setup() -> Setup {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(1).replication(1).clock(clock.shared()).build();
    cluster.create_topic("in", TopicConfig::new(1)).unwrap();
    cluster.create_topic("out", TopicConfig::new(1)).unwrap();
    Setup { cluster, clock }
}

/// 5-second windowed count with the given grace, as in Figure 6.
fn windowed_count_topology(grace_ms: i64, suppress: bool) -> Arc<kstreams::topology::Topology> {
    let builder = StreamsBuilder::new();
    let table = builder
        .stream::<String, String>("in")
        .group_by_key()
        .windowed_by(TimeWindows::of(5000).grace(grace_ms))
        .count("window-counts");
    let table = if suppress { table.suppress_until_window_close() } else { table };
    table.to_stream().to("out");
    Arc::new(builder.build().unwrap())
}

fn send(cluster: &Cluster, ts: i64) {
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    p.send("in", Some("k".to_string().to_bytes()), Some("v".to_string().to_bytes()), ts).unwrap();
    p.flush().unwrap();
}

/// All output records in order as (window_start, count).
fn read_all(cluster: &Cluster) -> Vec<(i64, i64)> {
    let mut c =
        Consumer::new(cluster.clone(), "verify", ConsumerConfig::default().read_committed());
    c.assign(cluster.partitions_of("out").unwrap()).unwrap();
    let mut out = Vec::new();
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            let wk = Windowed::<String>::from_bytes(rec.key.as_ref().unwrap()).unwrap();
            let count = i64::from_bytes(rec.value.as_ref().unwrap()).unwrap();
            out.push((wk.window_start, count));
        }
    }
    out
}

fn run_and_drain(setup: &Setup, app: &mut KafkaStreamsApp, steps: usize) {
    for _ in 0..steps {
        app.step().unwrap();
        setup.clock.advance(10);
    }
}

#[test]
fn figure6_revision_walkthrough() {
    // Figure 6: 5s windows, grace 10s, records at ts 12, 16, 14, 23
    // (scaled to ms here: 12_000 etc. to keep units consistent).
    let s = setup();
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        windowed_count_topology(10_000, false),
        StreamsConfig::new("fig6").exactly_once().with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();

    // (a) ts=12s → window [10s,15s) count 1, emitted immediately
    // (speculative, no completeness delay).
    send(&s.cluster, 12_000);
    run_and_drain(&s, &mut app, 3);
    assert_eq!(read_all(&s.cluster), vec![(10_000, 1)]);

    // (b) ts=16s → window [15s,20s) count 1.
    send(&s.cluster, 16_000);
    run_and_drain(&s, &mut app, 3);
    assert_eq!(read_all(&s.cluster), vec![(10_000, 1), (15_000, 1)]);

    // (c) out-of-order ts=14s, within grace → REVISION of [10s,15s): the
    // previously emitted count 1 is corrected to 2 via the same channel.
    send(&s.cluster, 14_000);
    run_and_drain(&s, &mut app, 3);
    assert_eq!(read_all(&s.cluster), vec![(10_000, 1), (15_000, 1), (10_000, 2)]);
    assert_eq!(app.metrics().revisions_emitted, 1);

    // (d) ts=30s advances stream time past 15s+10s → window [10s,15s) is
    // garbage collected...
    send(&s.cluster, 30_000);
    run_and_drain(&s, &mut app, 3);
    assert_eq!(
        app.query_window("window-counts", &"k".to_string().to_bytes(), 10_000),
        None,
        "closed window GC'd from the store (Figure 6.d)"
    );
    // ... and a late record for it (ts=12s again) is now dropped.
    send(&s.cluster, 12_000);
    run_and_drain(&s, &mut app, 3);
    assert_eq!(app.metrics().late_dropped, 1);
    let out = read_all(&s.cluster);
    assert_eq!(out.last(), Some(&(30_000, 1)), "late record produced no output");
    assert_eq!(out.len(), 4);
    app.close().unwrap();
}

#[test]
fn figure1_completeness_scenario_revises_incomplete_result() {
    // Figure 1.d: records at ts 11, 13, then out-of-order 12. With
    // speculative processing the early emissions for 11 and 13 are later
    // *revised*, never blocked.
    let s = setup();
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        windowed_count_topology(10_000, false),
        StreamsConfig::new("fig1d").exactly_once().with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    for ts in [11_000, 13_000, 12_000] {
        send(&s.cluster, ts);
        run_and_drain(&s, &mut app, 3);
    }
    // All three land in window [10s,15s): count revised 1 → 2 → 3.
    assert_eq!(read_all(&s.cluster), vec![(10_000, 1), (10_000, 2), (10_000, 3)]);
    app.close().unwrap();
}

#[test]
fn zero_grace_drops_any_late_record() {
    let s = setup();
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        windowed_count_topology(0, false),
        StreamsConfig::new("nograce").with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    send(&s.cluster, 6_000); // window [5s,10s); stream time 6s
    send(&s.cluster, 3_000); // window [0,5s) closed at stream time ≥ 5s
    run_and_drain(&s, &mut app, 5);
    assert_eq!(read_all(&s.cluster), vec![(5_000, 1)]);
    assert_eq!(app.metrics().late_dropped, 1);
    app.close().unwrap();
}

#[test]
fn grace_period_bounds_state_not_output_delay() {
    // §5: "the grace period here only controls how much old state Kafka
    // Streams would need to maintain … but does not indicate how long we
    // delay output". Even with a huge grace, output is immediate.
    let s = setup();
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        windowed_count_topology(3_600_000, false),
        StreamsConfig::new("hugegrace").with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    send(&s.cluster, 1_000);
    run_and_drain(&s, &mut app, 3);
    assert_eq!(read_all(&s.cluster).len(), 1, "output not delayed by grace");
    app.close().unwrap();
}

#[test]
fn suppress_emits_single_final_result_per_window() {
    let s = setup();
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        windowed_count_topology(2_000, true),
        StreamsConfig::new("suppress").with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    // Three records in window [0,5s), one out of order.
    for ts in [1_000, 3_000, 2_000] {
        send(&s.cluster, ts);
    }
    run_and_drain(&s, &mut app, 5);
    assert_eq!(read_all(&s.cluster), vec![], "nothing emitted before window close");

    // Advance stream time past 5s + 2s grace: the final count flushes.
    send(&s.cluster, 8_000);
    run_and_drain(&s, &mut app, 5);
    assert_eq!(read_all(&s.cluster), vec![(0, 3)], "one consolidated final result");
    assert_eq!(app.metrics().suppressed, 2, "two intermediate revisions absorbed");
    app.close().unwrap();
}

#[test]
fn suppress_time_limit_coalesces_revisions() {
    // §6.2: Expedia's conversation-view aggregation uses suppression to
    // reduce I/O: many updates per key within the interval → one output.
    let s = setup();
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("in")
        .group_by_key()
        .count("counts")
        .suppress_until_time_limit(1_000)
        .to_stream()
        .to("out");
    let topology = Arc::new(builder.build().unwrap());
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        topology,
        StreamsConfig::new("coalesce").with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    // 5 rapid updates within 1s of stream time.
    for ts in [0, 100, 200, 300, 400] {
        send(&s.cluster, ts);
    }
    run_and_drain(&s, &mut app, 5);
    // Advance stream time past the limit.
    send(&s.cluster, 1_500);
    run_and_drain(&s, &mut app, 5);

    let mut c = Consumer::new(s.cluster.clone(), "v", ConsumerConfig::default());
    c.assign(s.cluster.partitions_of("out").unwrap()).unwrap();
    let mut values = Vec::new();
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            values.push(i64::from_bytes(rec.value.as_ref().unwrap()).unwrap());
        }
    }
    // The flush-triggering record (ts 1.5s) also lands in the buffer before
    // the punctuator fires, so the single flushed record carries count 6 —
    // six updates consolidated into one output.
    assert_eq!(values, vec![6], "one output for six updates");
    assert!(app.metrics().suppressed >= 5);
    app.close().unwrap();
}

#[test]
fn downstream_table_consumes_revisions_correctly() {
    // §5's recomputation bookkeeping: a windowed count re-aggregated by a
    // downstream table operator must retract old counts before adding new
    // ones, or out-of-order revisions would double-count.
    let s = setup();
    let builder = StreamsBuilder::new();
    // Count per key per window, then sum all window-counts per key via a
    // table re-aggregation (group_by sends old+new through Change encoding).
    builder
        .stream::<String, String>("in")
        .group_by_key()
        .windowed_by(TimeWindows::of(5000).grace(10_000))
        .count("per-window")
        .group_by(|wk: &Windowed<String>, count| (wk.key.clone(), *count))
        .aggregate("total", || 0i64, |v, acc| acc + v, |v, acc| acc - v)
        .to_stream()
        .to("out");
    let topology = Arc::new(builder.build().unwrap());
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        topology,
        StreamsConfig::new("reagg").exactly_once().with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    // Two windows; the out-of-order record revises the first window.
    for ts in [1_000, 6_000, 2_000] {
        send(&s.cluster, ts);
        run_and_drain(&s, &mut app, 5);
    }
    // Total should be 3 (not 4): the revision of window [0,5s) from 1→2
    // must retract the 1 before adding the 2.
    let mut c = Consumer::new(s.cluster.clone(), "v", ConsumerConfig::default().read_committed());
    c.assign(s.cluster.partitions_of("out").unwrap()).unwrap();
    let mut last = None;
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            last = Some(i64::from_bytes(rec.value.as_ref().unwrap()).unwrap());
        }
    }
    assert_eq!(last, Some(3), "retract-then-accumulate kept the total exact");
    app.close().unwrap();
}

#[test]
fn order_agnostic_operators_never_delay() {
    // §5: stateless operators are order-agnostic — emitted immediately even
    // with wildly out-of-order input, no drops.
    let s = setup();
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("in")
        .filter(|_, v| !v.is_empty())
        .map_values(|_, v| format!("mapped-{v}"))
        .to("out");
    let topology = Arc::new(builder.build().unwrap());
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        topology,
        StreamsConfig::new("stateless").with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    for ts in [100, 5, 90, 1] {
        send(&s.cluster, ts);
    }
    run_and_drain(&s, &mut app, 5);
    let m = app.metrics();
    assert_eq!(m.records_emitted, 4);
    assert_eq!(m.late_dropped, 0);
    app.close().unwrap();
}
