//! Join semantics (§5): stream-stream joins with the hold-until-grace rule
//! for append-only outputs, table-table joins with amendment semantics, and
//! stream-table enrichment.

use kbroker::{Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig};
use kstreams::{JoinWindows, KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig};
use simkit::ManualClock;
use std::sync::Arc;

struct Setup {
    cluster: Cluster,
    clock: ManualClock,
}

fn setup(topics: &[&str]) -> Setup {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(1).replication(1).clock(clock.shared()).build();
    for t in topics {
        cluster.create_topic(t, TopicConfig::new(1)).unwrap();
    }
    cluster.create_topic("out", TopicConfig::new(1)).unwrap();
    Setup { cluster, clock }
}

fn send(cluster: &Cluster, topic: &str, key: &str, value: &str, ts: i64) {
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    p.send(topic, Some(key.to_string().to_bytes()), Some(value.to_string().to_bytes()), ts)
        .unwrap();
    p.flush().unwrap();
}

/// Output records as (key, value) strings, in order.
fn read_out(cluster: &Cluster) -> Vec<(String, String)> {
    let mut c =
        Consumer::new(cluster.clone(), "verify", ConsumerConfig::default().read_committed());
    c.assign(cluster.partitions_of("out").unwrap()).unwrap();
    let mut out = Vec::new();
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            out.push((
                String::from_bytes(rec.key.as_ref().unwrap()).unwrap(),
                rec.value
                    .as_ref()
                    .map_or_else(|| "<null>".into(), |v| String::from_bytes(v).unwrap()),
            ));
        }
    }
    out
}

fn run(setup: &Setup, app: &mut KafkaStreamsApp, steps: usize) {
    for _ in 0..steps {
        app.step().unwrap();
        setup.clock.advance(10);
    }
}

fn app_with(setup: &Setup, topology: kstreams::topology::Topology, name: &str) -> KafkaStreamsApp {
    let mut app = KafkaStreamsApp::new(
        setup.cluster.clone(),
        Arc::new(topology),
        StreamsConfig::new(name).exactly_once().with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    app
}

#[test]
fn stream_stream_inner_join_emits_on_second_arrival() {
    let s = setup(&["left", "right"]);
    let builder = StreamsBuilder::new();
    let left = builder.stream::<String, String>("left");
    let right = builder.stream::<String, String>("right");
    left.join(&right, JoinWindows::of(1_000), |l, r| format!("{l}+{r}")).to("out");
    let mut app = app_with(&s, builder.build().unwrap(), "ssj");

    send(&s.cluster, "left", "k", "a", 1_000);
    run(&s, &mut app, 3);
    assert_eq!(read_out(&s.cluster), vec![], "no match yet — nothing emitted");

    send(&s.cluster, "right", "k", "b", 1_500); // within ±1s
    run(&s, &mut app, 3);
    assert_eq!(read_out(&s.cluster), vec![("k".into(), "a+b".into())]);

    // A right record outside the window never joins.
    send(&s.cluster, "right", "k", "c", 5_000);
    run(&s, &mut app, 3);
    assert_eq!(read_out(&s.cluster).len(), 1);
    app.close().unwrap();
}

#[test]
fn stream_stream_join_out_of_order_still_pairs() {
    let s = setup(&["left", "right"]);
    let builder = StreamsBuilder::new();
    let left = builder.stream::<String, String>("left");
    let right = builder.stream::<String, String>("right");
    left.join(&right, JoinWindows::of(1_000).grace(5_000), |l, r| format!("{l}+{r}")).to("out");
    let mut app = app_with(&s, builder.build().unwrap(), "ssj-ooo");

    // Right arrives first with a LATER timestamp, left arrives second with
    // an earlier one (out of order): they must still pair.
    send(&s.cluster, "right", "k", "b", 2_000);
    send(&s.cluster, "left", "k", "a", 1_200);
    run(&s, &mut app, 5);
    assert_eq!(read_out(&s.cluster), vec![("k".into(), "a+b".into())]);
    app.close().unwrap();
}

#[test]
fn paper_section5_left_join_holds_until_grace() {
    // §5's exact scenario: "we need to hold on emitting the join result for
    // record a until the grace period has elapsed" — because a premature
    // (a, null) in an append-only stream could never be revoked.
    let s = setup(&["left", "right"]);
    let builder = StreamsBuilder::new();
    let left = builder.stream::<String, String>("left");
    let right = builder.stream::<String, String>("right");
    left.left_join(&right, JoinWindows::of(1_000).grace(2_000), |l, r| {
        format!("{l}+{}", r.map_or("null", String::as_str))
    })
    .to("out");
    let mut app = app_with(&s, builder.build().unwrap(), "ssj-left");

    // Record a on the left; record b is "delayed".
    send(&s.cluster, "left", "k", "a", 1_000);
    run(&s, &mut app, 3);
    assert_eq!(read_out(&s.cluster), vec![], "no premature (a, null)");

    // b arrives late but within window+grace: the CORRECT result is emitted
    // and the (a, null) padding is cancelled.
    send(&s.cluster, "right", "k", "b", 1_800);
    run(&s, &mut app, 3);
    assert_eq!(read_out(&s.cluster), vec![("k".into(), "a+b".into())]);

    // Stream time advances far past the window+grace: no spurious padding
    // appears for the already-joined record.
    send(&s.cluster, "left", "k2", "z", 60_000);
    run(&s, &mut app, 5);
    let out = read_out(&s.cluster);
    assert!(
        !out.contains(&("k".into(), "a+null".into())),
        "joined record must not also pad: {out:?}"
    );
    app.close().unwrap();
}

#[test]
fn left_join_pads_after_grace_when_no_match_arrives() {
    let s = setup(&["left", "right"]);
    let builder = StreamsBuilder::new();
    let left = builder.stream::<String, String>("left");
    let right = builder.stream::<String, String>("right");
    left.left_join(&right, JoinWindows::of(1_000).grace(2_000), |l, r| {
        format!("{l}+{}", r.map_or("null", String::as_str))
    })
    .to("out");
    let mut app = app_with(&s, builder.build().unwrap(), "ssj-pad");

    send(&s.cluster, "left", "k", "a", 1_000);
    run(&s, &mut app, 3);
    assert_eq!(read_out(&s.cluster), vec![]);
    // Advance stream time beyond ts + after + grace = 4s (via another key).
    send(&s.cluster, "left", "k2", "z", 4_100);
    run(&s, &mut app, 5);
    let out = read_out(&s.cluster);
    assert!(out.contains(&("k".into(), "a+null".into())), "{out:?}");
    app.close().unwrap();
}

#[test]
fn outer_join_pads_both_sides() {
    let s = setup(&["left", "right"]);
    let builder = StreamsBuilder::new();
    let left = builder.stream::<String, String>("left");
    let right = builder.stream::<String, String>("right");
    left.outer_join(&right, JoinWindows::of(500).grace(500), |l, r| {
        format!("{}|{}", l.map_or("null", String::as_str), r.map_or("null", String::as_str))
    })
    .to("out");
    let mut app = app_with(&s, builder.build().unwrap(), "ssj-outer");

    send(&s.cluster, "left", "a", "l1", 1_000);
    send(&s.cluster, "right", "b", "r1", 1_100);
    // Far-future record on each side advances both join processors' shared
    // task stream time.
    send(&s.cluster, "left", "zz", "advance", 10_000);
    send(&s.cluster, "right", "zz2", "advance", 10_000);
    run(&s, &mut app, 5);
    let out = read_out(&s.cluster);
    assert!(out.contains(&("a".into(), "l1|null".into())), "{out:?}");
    assert!(out.contains(&("b".into(), "null|r1".into())), "{out:?}");
    app.close().unwrap();
}

#[test]
fn table_table_join_amends_speculative_results() {
    // §5: table-table joins may emit (a, null) then amend to (a, b) —
    // the output is a table, so the overwrite is semantically correct.
    let s = setup(&["lt", "rt"]);
    let builder = StreamsBuilder::new();
    let left = builder.table::<String, String>("lt", "lt-store");
    let right = builder.table::<String, String>("rt", "rt-store");
    left.left_join(&right, |l, r| format!("{l}+{}", r.map_or("null", String::as_str)))
        .to_stream()
        .to("out");
    let mut app = app_with(&s, builder.build().unwrap(), "ttj");

    send(&s.cluster, "lt", "k", "a", 1_000);
    run(&s, &mut app, 3);
    // Speculative immediate emission with null right side.
    assert_eq!(read_out(&s.cluster), vec![("k".into(), "a+null".into())]);

    send(&s.cluster, "rt", "k", "b", 1_500);
    run(&s, &mut app, 3);
    // Amendment: the later record overwrites the earlier (§5).
    assert_eq!(
        read_out(&s.cluster),
        vec![("k".into(), "a+null".into()), ("k".into(), "a+b".into())]
    );
    app.close().unwrap();
}

#[test]
fn table_table_inner_join_handles_updates_and_deletes() {
    let s = setup(&["lt", "rt"]);
    let builder = StreamsBuilder::new();
    let left = builder.table::<String, String>("lt", "l-store");
    let right = builder.table::<String, String>("rt", "r-store");
    left.join(&right, |l, r| format!("{l}*{r}")).to_stream().to("out");
    let mut app = app_with(&s, builder.build().unwrap(), "ttj-inner");

    send(&s.cluster, "lt", "k", "a1", 1_000);
    run(&s, &mut app, 3);
    assert_eq!(read_out(&s.cluster), vec![], "inner join waits for both sides");

    send(&s.cluster, "rt", "k", "b1", 1_100);
    send(&s.cluster, "lt", "k", "a2", 1_200); // left update re-joins
    run(&s, &mut app, 3);
    assert_eq!(
        read_out(&s.cluster),
        vec![("k".into(), "a1*b1".into()), ("k".into(), "a2*b1".into())]
    );

    // Deleting the right side retracts the join result (tombstone).
    let mut p = Producer::new(s.cluster.clone(), ProducerConfig::default());
    p.send("rt", Some("k".to_string().to_bytes()), None, 1_300).unwrap();
    p.flush().unwrap();
    run(&s, &mut app, 3);
    let out = read_out(&s.cluster);
    assert_eq!(out.last(), Some(&("k".into(), "<null>".into())), "{out:?}");
    app.close().unwrap();
}

#[test]
fn stream_table_join_enriches_with_current_table_value() {
    let s = setup(&["clicks", "profiles"]);
    let builder = StreamsBuilder::new();
    let clicks = builder.stream::<String, String>("clicks");
    let profiles = builder.table::<String, String>("profiles", "profile-store");
    clicks.join_table(&profiles, |click, profile| format!("{click}@{profile}")).to("out");
    let mut app = app_with(&s, builder.build().unwrap(), "stj");

    // Click before the profile exists: inner join drops it.
    send(&s.cluster, "clicks", "u1", "c0", 500);
    run(&s, &mut app, 3);
    assert_eq!(read_out(&s.cluster), vec![]);

    send(&s.cluster, "profiles", "u1", "berlin", 1_000);
    run(&s, &mut app, 3);
    send(&s.cluster, "clicks", "u1", "c1", 1_500);
    run(&s, &mut app, 3);
    assert_eq!(read_out(&s.cluster), vec![("u1".into(), "c1@berlin".into())]);

    // Profile update affects subsequent clicks only.
    send(&s.cluster, "profiles", "u1", "tokyo", 2_000);
    run(&s, &mut app, 3);
    send(&s.cluster, "clicks", "u1", "c2", 2_500);
    run(&s, &mut app, 3);
    assert_eq!(
        read_out(&s.cluster),
        vec![("u1".into(), "c1@berlin".into()), ("u1".into(), "c2@tokyo".into())]
    );
    app.close().unwrap();
}

#[test]
fn stream_table_left_join_pads_missing_table_rows() {
    let s = setup(&["clicks", "profiles"]);
    let builder = StreamsBuilder::new();
    let clicks = builder.stream::<String, String>("clicks");
    let profiles = builder.table::<String, String>("profiles", "p-store");
    clicks
        .left_join_table(&profiles, |click, profile| {
            format!("{click}@{}", profile.map_or("unknown", String::as_str))
        })
        .to("out");
    let mut app = app_with(&s, builder.build().unwrap(), "stj-left");

    send(&s.cluster, "clicks", "u1", "c0", 500);
    run(&s, &mut app, 3);
    assert_eq!(read_out(&s.cluster), vec![("u1".into(), "c0@unknown".into())]);
    app.close().unwrap();
}
