//! True multithreaded execution: application instances on separate OS
//! threads sharing one cluster (wall clock), with concurrent producers —
//! the deployment shape of §3.3/§6. Verifies exactly-once end to end under
//! real interleaving.

use bytes::Bytes;
use kbroker::{Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig};
use kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn counting_topology() -> Arc<kstreams::topology::Topology> {
    let builder = StreamsBuilder::new();
    builder.stream::<String, String>("events").group_by_key().count("counts").to_stream().to("out");
    Arc::new(builder.build().unwrap())
}

#[test]
fn four_threads_share_the_work_exactly_once() {
    const THREADS: usize = 4;
    const RECORDS: usize = 2_000;
    const KEYS: usize = 20;
    // Wall clock: this test runs in real time.
    let cluster = Cluster::builder().brokers(3).replication(3).build();
    cluster.create_topic("events", TopicConfig::new(4)).unwrap();
    cluster.create_topic("out", TopicConfig::new(4)).unwrap();
    let topology = counting_topology();

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for i in 0..THREADS {
        let cluster = cluster.clone();
        let topology = topology.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut app = KafkaStreamsApp::new(
                cluster,
                topology,
                StreamsConfig::new("mt-app").exactly_once().with_commit_interval_ms(5),
                format!("thread-{i}"),
            );
            app.start().unwrap();
            while !stop.load(Ordering::Relaxed) {
                app.step().unwrap();
            }
            let processed = app.metrics().records_processed;
            app.close().unwrap();
            processed
        }));
    }

    // A concurrent producer feeds records while the instances run.
    let mut producer = Producer::new(cluster.clone(), ProducerConfig::default());
    for i in 0..RECORDS {
        producer
            .send(
                "events",
                Some(format!("k{}", i % KEYS).to_bytes()),
                Some(Bytes::from_static(b"x")),
                i as i64,
            )
            .unwrap();
        if i % 64 == 0 {
            producer.flush().unwrap();
        }
    }
    producer.flush().unwrap();
    // Poll until quiesced: stop only once the group's committed input
    // offsets reach the log end on every partition (no fixed sleep — the
    // old 400 ms nap was a race on slow machines), with a hard deadline so
    // a livelocked run fails loudly instead of hanging.
    let targets: Vec<_> = cluster
        .partitions_of("events")
        .unwrap()
        .into_iter()
        .map(|tp| {
            let end = cluster.latest_offset(&tp).unwrap();
            (tp, end)
        })
        .collect();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let done = targets.iter().all(|(tp, end)| {
            cluster.group_committed_offset("mt-app", tp).ok().flatten().unwrap_or(0) >= *end
        });
        if done {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "instances did not commit the whole input within the deadline"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    let mut total_processed = 0;
    for h in handles {
        total_processed += h.join().expect("worker thread");
    }
    // Processing attempts may exceed RECORDS: work discarded by a
    // rebalance-overtaken (aborted) transaction is reprocessed. The
    // exactly-once guarantee is about *committed* results, asserted below.
    assert!(total_processed as usize >= RECORDS, "all records processed at least once");

    // Verify final counts at a read-committed consumer.
    let mut c = Consumer::new(cluster.clone(), "v", ConsumerConfig::default().read_committed());
    c.assign(cluster.partitions_of("out").unwrap()).unwrap();
    let mut latest: HashMap<String, i64> = HashMap::new();
    let mut outputs = 0;
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            latest.insert(
                String::from_bytes(rec.key.as_ref().unwrap()).unwrap(),
                i64::from_bytes(rec.value.as_ref().unwrap()).unwrap(),
            );
            outputs += 1;
        }
    }
    assert_eq!(outputs, RECORDS, "one committed output per input");
    assert_eq!(latest.len(), KEYS);
    let expected = (RECORDS / KEYS) as i64;
    assert!(latest.values().all(|&v| v == expected), "every key counted to {expected}: {latest:?}");
}

#[test]
fn producers_race_from_many_threads_with_idempotence() {
    // Multiple producer threads with ack-loss faults: the broker-side
    // dedup must keep each thread's stream exactly-once under contention.
    use simkit::{FaultPlan, FaultPoint};
    let faults = FaultPlan::seeded(99).with_ack_loss(FaultPoint::ProduceAckLost, 0.2);
    let cluster = Cluster::builder().brokers(3).replication(3).faults(faults).build();
    cluster.create_topic("t", TopicConfig::new(4)).unwrap();
    let mut handles = Vec::new();
    for t in 0..4 {
        let cluster = cluster.clone();
        handles.push(std::thread::spawn(move || {
            let mut p = Producer::new(
                cluster,
                ProducerConfig { max_retries: 100, ..ProducerConfig::idempotent_only() },
            );
            for i in 0..500 {
                p.send(
                    "t",
                    Some(format!("t{t}-k{}", i % 8).to_bytes()),
                    Some(format!("t{t}-v{i}").to_bytes()),
                    i,
                )
                .unwrap();
            }
            p.flush().unwrap();
        }));
    }
    for h in handles {
        h.join().expect("producer thread");
    }
    let total: usize = cluster.topic_record_count("t").unwrap();
    assert_eq!(total, 4 * 500, "per-producer sequences dedup independently");
}
