//! Window-variety tests: hopping windows, session windows, and determinism
//! of timestamp-ordered processing (§3.2, §5, §7).

use bytes::Bytes;
use kbroker::{Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig};
use kstreams::{
    KSerde, KafkaStreamsApp, SessionWindows, StreamsBuilder, StreamsConfig, TimeWindows, Windowed,
};
use simkit::ManualClock;
use std::collections::HashMap;
use std::sync::Arc;

struct Setup {
    cluster: Cluster,
    clock: ManualClock,
}

fn setup() -> Setup {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(1).replication(1).clock(clock.shared()).build();
    cluster.create_topic("in", TopicConfig::new(1)).unwrap();
    cluster.create_topic("out", TopicConfig::new(1)).unwrap();
    Setup { cluster, clock }
}

fn send(cluster: &Cluster, key: &str, ts: i64) {
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    p.send("in", Some(key.to_string().to_bytes()), Some(Bytes::from_static(b"v")), ts).unwrap();
    p.flush().unwrap();
}

fn run(s: &Setup, app: &mut KafkaStreamsApp, steps: usize) {
    for _ in 0..steps {
        app.step().unwrap();
        s.clock.advance(10);
    }
}

/// Latest count per (key, window_start) from the output topic.
fn latest_windowed(cluster: &Cluster) -> HashMap<(String, i64), i64> {
    let mut c = Consumer::new(cluster.clone(), "v", ConsumerConfig::default().read_committed());
    c.assign(cluster.partitions_of("out").unwrap()).unwrap();
    let mut out = HashMap::new();
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            let wk = Windowed::<String>::from_bytes(rec.key.as_ref().unwrap()).unwrap();
            match rec.value.as_ref() {
                Some(v) => {
                    out.insert((wk.key, wk.window_start), i64::from_bytes(v).unwrap());
                }
                None => {
                    out.remove(&(wk.key, wk.window_start));
                }
            }
        }
    }
    out
}

#[test]
fn hopping_windows_count_into_overlapping_windows() {
    let s = setup();
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("in")
        .group_by_key()
        // 10 s windows hopping every 5 s: each record lands in two windows.
        .windowed_by(TimeWindows::of(10_000).advance_by(5_000).grace(60_000))
        .count("hop-counts")
        .to_stream()
        .to("out");
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        Arc::new(builder.build().unwrap()),
        StreamsConfig::new("hopping").exactly_once().with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();

    send(&s.cluster, "k", 7_000); // windows [0,10s) and [5s,15s)
    send(&s.cluster, "k", 12_000); // windows [5s,15s) and [10s,20s)
    run(&s, &mut app, 5);
    let counts = latest_windowed(&s.cluster);
    assert_eq!(counts[&("k".into(), 0)], 1);
    assert_eq!(counts[&("k".into(), 5_000)], 2, "overlap window sees both");
    assert_eq!(counts[&("k".into(), 10_000)], 1);
    app.close().unwrap();
}

#[test]
fn session_windows_merge_and_gc() {
    let s = setup();
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("in")
        .group_by_key()
        .windowed_by_session(SessionWindows::with_gap(1_000).grace(30_000))
        .count("sessions")
        .to_stream()
        .to("out");
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        Arc::new(builder.build().unwrap()),
        StreamsConfig::new("sessions").exactly_once().with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();

    // Two separate bursts for "k": [1000..1400] and [5000].
    for ts in [1_000, 1_400, 5_000] {
        send(&s.cluster, "k", ts);
    }
    run(&s, &mut app, 5);
    let counts = latest_windowed(&s.cluster);
    assert_eq!(counts[&("k".into(), 1_000)], 2, "burst merged into one session");
    assert_eq!(counts[&("k".into(), 5_000)], 1);

    // A record at 2000 bridges NOTHING (gap 1000 from 1400 is 2400 ≥ …
    // actually 2000 - 1400 = 600 < 1000): it extends the first session.
    send(&s.cluster, "k", 2_000);
    run(&s, &mut app, 5);
    let counts = latest_windowed(&s.cluster);
    assert_eq!(counts[&("k".into(), 1_000)], 3, "session extended to [1000,2000]");

    // A record at 3000 bridges [1000..2000] and nothing else; at 4200 it
    // would bridge toward 5000. Send 4200: merges [1000..3000]? No —
    // 4200-3000 > 1000. It merges with [5000] (5000-4200 < 1000).
    send(&s.cluster, "k", 3_000);
    send(&s.cluster, "k", 4_200);
    run(&s, &mut app, 5);
    let counts = latest_windowed(&s.cluster);
    assert_eq!(counts[&("k".into(), 1_000)], 4, "3000 extended the first session");
    assert_eq!(counts[&("k".into(), 4_200)], 2, "4200 merged with the 5000 session");
    app.close().unwrap();
}

#[test]
fn session_merge_spanning_two_sessions() {
    let s = setup();
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("in")
        .group_by_key()
        .windowed_by_session(SessionWindows::with_gap(1_000).grace(30_000))
        .count("sessions2")
        .to_stream()
        .to("out");
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        Arc::new(builder.build().unwrap()),
        StreamsConfig::new("sessions2").exactly_once().with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    // Two sessions, then an out-of-order record in the middle fuses them.
    send(&s.cluster, "k", 1_000);
    send(&s.cluster, "k", 3_000);
    run(&s, &mut app, 5);
    send(&s.cluster, "k", 2_000); // within gap of both
    run(&s, &mut app, 5);
    let counts = latest_windowed(&s.cluster);
    assert_eq!(counts.len(), 1, "fused into one session: {counts:?}");
    assert_eq!(counts[&("k".into(), 1_000)], 3);
    app.close().unwrap();
}

#[test]
fn timestamp_ordered_processing_is_deterministic() {
    // §7: Kafka Streams "does make deterministic incoming record choices
    // based on record timestamps". Run the same two-input merge twice and
    // require byte-identical output order.
    let run_once = || -> Vec<(Option<Bytes>, i64)> {
        let clock = ManualClock::new();
        let cluster = Cluster::builder().brokers(1).replication(1).clock(clock.shared()).build();
        cluster.create_topic("a", TopicConfig::new(1)).unwrap();
        cluster.create_topic("b", TopicConfig::new(1)).unwrap();
        cluster.create_topic("out", TopicConfig::new(1)).unwrap();
        let builder = StreamsBuilder::new();
        let left = builder.stream::<String, String>("a");
        let right = builder.stream::<String, String>("b");
        left.merge(&right).to("out");
        let mut app = KafkaStreamsApp::new(
            cluster.clone(),
            Arc::new(builder.build().unwrap()),
            StreamsConfig::new("det").exactly_once().with_commit_interval_ms(10),
            "i0",
        );
        app.start().unwrap();
        // Interleaved timestamps across the two inputs.
        let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
        for (topic, ts) in [("a", 5), ("a", 1), ("b", 3), ("b", 2), ("a", 4), ("b", 6), ("a", 0)] {
            p.send(
                topic,
                Some("k".to_string().to_bytes()),
                Some(Bytes::from(format!("{topic}{ts}"))),
                ts,
            )
            .unwrap();
        }
        p.flush().unwrap();
        for _ in 0..10 {
            app.step().unwrap();
            clock.advance(10);
        }
        app.close().unwrap();
        let mut c = Consumer::new(cluster.clone(), "v", ConsumerConfig::default().read_committed());
        c.assign(cluster.partitions_of("out").unwrap()).unwrap();
        let mut out = Vec::new();
        loop {
            let batch = c.poll().unwrap();
            if batch.is_empty() {
                break;
            }
            for rec in batch {
                out.push((rec.value.clone(), rec.timestamp));
            }
        }
        out
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "identical runs must produce identical output order");
    assert_eq!(first.len(), 7);
    // Offset order holds within each partition; across the two partition
    // heads the smaller timestamp goes first. With partition a = [5,1,4,0]
    // and b = [3,2,6] (offset order), the head comparison yields exactly:
    let ts: Vec<i64> = first.iter().map(|(_, t)| *t).collect();
    assert_eq!(ts, vec![3, 2, 5, 1, 4, 0, 6], "deterministic head-of-partition min-ts choice");
}
