//! Tests for the §3.3 topology optimization: a table read directly from a
//! topic uses that topic as its changelog — no duplicate internal topic, and
//! restore replays the source up to the committed offset only.

use kbroker::{group::SESSION_TIMEOUT_MS, Cluster, Producer, ProducerConfig, TopicConfig};
use kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig};
use simkit::ManualClock;
use std::sync::Arc;

fn table_topology() -> Arc<kstreams::topology::Topology> {
    let builder = StreamsBuilder::new();
    builder
        .table::<String, String>("profiles", "profile-store")
        .map_values(|_k, v| v.to_uppercase())
        .to_stream()
        .to("out");
    Arc::new(builder.build().unwrap())
}

struct Setup {
    cluster: Cluster,
    clock: ManualClock,
}

fn setup() -> Setup {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(1).replication(1).clock(clock.shared()).build();
    cluster.create_topic("profiles", TopicConfig::new(1)).unwrap();
    cluster.create_topic("out", TopicConfig::new(1)).unwrap();
    Setup { cluster, clock }
}

fn upsert(cluster: &Cluster, key: &str, value: &str, ts: i64) {
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    p.send("profiles", Some(key.to_string().to_bytes()), Some(value.to_string().to_bytes()), ts)
        .unwrap();
    p.flush().unwrap();
}

#[test]
fn no_changelog_topic_is_created_for_source_tables() {
    let s = setup();
    let topology = table_topology();
    assert!(
        topology.internal_topics.is_empty(),
        "source-changelog optimization must suppress the changelog topic: {:?}",
        topology.internal_topics
    );
    assert!(topology.source_changelogs.contains_key("profile-store"));
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        topology,
        StreamsConfig::new("opt-app").exactly_once().with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    app.step().unwrap();
    assert!(
        !s.cluster.topic_exists("opt-app-profile-store-changelog"),
        "no physical changelog topic either"
    );
    app.close().unwrap();
}

#[test]
fn restore_replays_source_up_to_committed_offset() {
    let s = setup();
    for i in 0..20 {
        upsert(&s.cluster, &format!("k{}", i % 4), &format!("v{i}"), i);
    }
    // First incarnation processes and commits everything.
    {
        let mut app = KafkaStreamsApp::new(
            s.cluster.clone(),
            table_topology(),
            StreamsConfig::new("opt-app").exactly_once().with_commit_interval_ms(10),
            "i0",
        );
        app.start().unwrap();
        for _ in 0..10 {
            app.step().unwrap();
            s.clock.advance(10);
        }
        app.close().unwrap();
    }
    // More upserts arrive that no one has processed yet.
    for i in 20..25 {
        upsert(&s.cluster, "k0", &format!("late{i}"), i);
    }
    // Second incarnation must restore from the SOURCE topic, bounded at the
    // committed offset (20) — the 5 late records are *processed*, not
    // restored.
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        table_topology(),
        StreamsConfig::new("opt-app").exactly_once().with_commit_interval_ms(10),
        "i1",
    );
    app.start().unwrap();
    assert_eq!(app.metrics().restore_records, 20, "restore covers exactly the committed prefix");
    assert_eq!(
        app.query_kv("profile-store", &"k0".to_string().to_bytes())
            .map(|b| String::from_bytes(&b).unwrap()),
        Some("v16".into()),
        "restored state is the committed-prefix materialization"
    );
    for _ in 0..10 {
        app.step().unwrap();
        s.clock.advance(10);
    }
    assert_eq!(
        app.query_kv("profile-store", &"k0".to_string().to_bytes())
            .map(|b| String::from_bytes(&b).unwrap()),
        Some("late24".into()),
        "late records processed on top of the restored prefix"
    );
    app.close().unwrap();
}

#[test]
fn table_semantics_survive_crash_with_source_restore() {
    let s = setup();
    upsert(&s.cluster, "alice", "berlin", 0);
    upsert(&s.cluster, "alice", "tokyo", 1);
    {
        let mut app = KafkaStreamsApp::new(
            s.cluster.clone(),
            table_topology(),
            StreamsConfig::new("opt-app").exactly_once().with_commit_interval_ms(10),
            "i0",
        );
        app.start().unwrap();
        for _ in 0..10 {
            app.step().unwrap();
            s.clock.advance(10);
        }
        app.crash();
    }
    s.clock.advance(SESSION_TIMEOUT_MS.max(s.cluster.default_txn_timeout_ms()) + 1);
    s.cluster.abort_expired_transactions();
    s.cluster.group_expire_members("opt-app");
    upsert(&s.cluster, "alice", "lisbon", 2);
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        table_topology(),
        StreamsConfig::new("opt-app").exactly_once().with_commit_interval_ms(10),
        "i1",
    );
    app.start().unwrap();
    for _ in 0..10 {
        app.step().unwrap();
        s.clock.advance(10);
    }
    assert_eq!(
        app.query_kv("profile-store", &"alice".to_string().to_bytes())
            .map(|b| String::from_bytes(&b).unwrap()),
        Some("lisbon".into())
    );
    app.close().unwrap();
}

#[test]
fn aggregation_stores_still_use_changelog_topics() {
    // The optimization applies only to direct table sources: derived
    // aggregations still need their own changelog.
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("events")
        .group_by_key()
        .count("agg-store")
        .to_stream()
        .to("out");
    let topology = builder.build().unwrap();
    assert!(topology.internal_topics.iter().any(|t| t.name == "agg-store-changelog"));
    assert!(topology.source_changelogs.is_empty());
}
