//! Log-maintenance behaviours the paper's architecture depends on (§3.2,
//! §4): changelog compaction bounding restore work, and repartition-topic
//! purging once downstream tasks have consumed.

use bytes::Bytes;
use kbroker::{Cluster, Producer, ProducerConfig, TopicConfig, TopicPartition};
use kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig};
use simkit::ManualClock;
use std::sync::Arc;

fn counting_topology() -> Arc<kstreams::topology::Topology> {
    let builder = StreamsBuilder::new();
    builder.stream::<String, String>("events").group_by_key().count("counts").to_stream().to("out");
    Arc::new(builder.build().unwrap())
}

struct Setup {
    cluster: Cluster,
    clock: ManualClock,
}

fn setup() -> Setup {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(1).replication(1).clock(clock.shared()).build();
    cluster.create_topic("events", TopicConfig::new(1)).unwrap();
    cluster.create_topic("out", TopicConfig::new(1)).unwrap();
    Setup { cluster, clock }
}

fn pump(s: &Setup, app: &mut KafkaStreamsApp, steps: usize) {
    for _ in 0..steps {
        app.step().unwrap();
        s.clock.advance(10);
    }
}

#[test]
fn compacted_changelog_bounds_restore_work() {
    let s = setup();
    // Many updates to FEW keys → the changelog grows with updates but
    // compacts down to the key count.
    {
        let mut app = KafkaStreamsApp::new(
            s.cluster.clone(),
            counting_topology(),
            StreamsConfig::new("m-app").exactly_once().with_commit_interval_ms(10),
            "i0",
        );
        app.start().unwrap();
        let mut p = Producer::new(s.cluster.clone(), ProducerConfig::default());
        for i in 0..300 {
            p.send(
                "events",
                Some(format!("k{}", i % 3).to_bytes()),
                Some(Bytes::from_static(b"x")),
                i,
            )
            .unwrap();
        }
        p.flush().unwrap();
        pump(&s, &mut app, 20);
        app.close().unwrap();
    }
    let changelog = "m-app-counts-changelog";
    let before = s.cluster.topic_record_count(changelog).unwrap();
    assert_eq!(before, 300, "one changelog append per update");
    let stats = s.cluster.compact_topic(changelog).unwrap();
    let after = s.cluster.topic_record_count(changelog).unwrap();
    assert_eq!(after, 3, "compaction keeps the latest per key");
    assert!(stats[0].reclaimed_fraction() > 0.98);

    // A fresh instance restores from the compacted changelog: restore work
    // is proportional to state size, not update count.
    let mut app2 = KafkaStreamsApp::new(
        s.cluster.clone(),
        counting_topology(),
        StreamsConfig::new("m-app").exactly_once().with_commit_interval_ms(10),
        "i1",
    );
    app2.start().unwrap();
    assert_eq!(app2.metrics().restore_records, 3, "restored exactly |state| records");
    assert_eq!(
        app2.query_kv("counts", &"k0".to_string().to_bytes()).map(|b| i64::from_bytes(&b).unwrap()),
        Some(100),
        "restored value is the latest count"
    );
    app2.close().unwrap();
}

#[test]
fn repartition_topic_can_be_purged_after_consumption() {
    // §3.2: "Once downstream sub-topologies have processed some records in
    // offset order, they can request Kafka to delete these records from the
    // repartition topics."
    let s = setup();
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("events")
        .map(|k, v| (format!("{k}!"), v.clone())) // key change forces repartition
        .group_by_key()
        .count("counts2")
        .to_stream()
        .to("out");
    let topology = Arc::new(builder.build().unwrap());
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        topology,
        StreamsConfig::new("p-app").exactly_once().with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    let mut p = Producer::new(s.cluster.clone(), ProducerConfig::default());
    for i in 0..50 {
        p.send("events", Some(format!("k{i}").to_bytes()), Some(Bytes::from_static(b"x")), i)
            .unwrap();
    }
    p.flush().unwrap();
    pump(&s, &mut app, 20);

    // Find the repartition topic and purge up to the committed offsets.
    let repart = {
        let topics: Vec<String> =
            (0..1).map(|_| "p-app-KSTREAM-AGGREGATE-0000000002-repartition".to_string()).collect();
        topics.into_iter().find(|t| s.cluster.topic_exists(t)).expect("repartition topic")
    };
    let tp = TopicPartition::new(repart.clone(), 0);
    let committed = s.cluster.group_committed_offset("p-app", &tp).unwrap().expect("committed");
    assert!(committed > 0);
    s.cluster.delete_records(&tp, committed).unwrap();
    assert_eq!(s.cluster.earliest_offset(&tp).unwrap(), committed);

    // The pipeline keeps working after the purge.
    p.send("events", Some("fresh".to_string().to_bytes()), Some(Bytes::from_static(b"x")), 100)
        .unwrap();
    p.flush().unwrap();
    pump(&s, &mut app, 20);
    assert_eq!(
        app.query_kv("counts2", &"fresh!".to_string().to_bytes())
            .map(|b| i64::from_bytes(&b).unwrap()),
        Some(1)
    );
    app.close().unwrap();
}

#[test]
fn restore_after_compaction_equals_restore_before() {
    // Compacting the changelog must not change what a restore produces.
    let s = setup();
    {
        let mut app = KafkaStreamsApp::new(
            s.cluster.clone(),
            counting_topology(),
            StreamsConfig::new("eq-app").exactly_once().with_commit_interval_ms(10),
            "i0",
        );
        app.start().unwrap();
        let mut p = Producer::new(s.cluster.clone(), ProducerConfig::default());
        for i in 0..60 {
            p.send(
                "events",
                Some(format!("k{}", i % 7).to_bytes()),
                Some(Bytes::from_static(b"x")),
                i,
            )
            .unwrap();
        }
        p.flush().unwrap();
        pump(&s, &mut app, 20);
        app.close().unwrap();
    }
    let restore_counts = |label: &str, s: &Setup| -> Vec<(String, i64)> {
        let mut app = KafkaStreamsApp::new(
            s.cluster.clone(),
            counting_topology(),
            StreamsConfig::new("eq-app").exactly_once().with_commit_interval_ms(10),
            label,
        );
        app.start().unwrap();
        let counts: Vec<(String, i64)> = (0..7)
            .map(|k| {
                let key = format!("k{k}");
                let v = app
                    .query_kv("counts", &key.clone().to_bytes())
                    .map_or(0, |b| i64::from_bytes(&b).unwrap());
                (key, v)
            })
            .collect();
        app.close().unwrap();
        counts
    };
    let before = restore_counts("r1", &s);
    s.cluster.compact_topic("eq-app-counts-changelog").unwrap();
    let after = restore_counts("r2", &s);
    assert_eq!(before, after, "compaction must not alter restored state");
}
