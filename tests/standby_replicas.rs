//! Standby-replica tests (§3.3 state-migration minimization; §8's
//! queryable-replica future work): warm store copies on other instances,
//! near-zero-restore promotion on failover, and standby queries.

use bytes::Bytes;
use kbroker::{group::SESSION_TIMEOUT_MS, Cluster, Producer, ProducerConfig, TopicConfig};
use kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig};
use simkit::ManualClock;
use std::sync::Arc;

fn counting_topology() -> Arc<kstreams::topology::Topology> {
    let builder = StreamsBuilder::new();
    builder.stream::<String, String>("events").group_by_key().count("counts").to_stream().to("out");
    Arc::new(builder.build().unwrap())
}

struct Setup {
    cluster: Cluster,
    clock: ManualClock,
}

fn setup() -> Setup {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(3).replication(3).clock(clock.shared()).build();
    cluster.create_topic("events", TopicConfig::new(2)).unwrap();
    cluster.create_topic("out", TopicConfig::new(2)).unwrap();
    Setup { cluster, clock }
}

fn app(s: &Setup, id: &str) -> KafkaStreamsApp {
    KafkaStreamsApp::new(
        s.cluster.clone(),
        counting_topology(),
        StreamsConfig::new("sb-app")
            .exactly_once()
            .with_commit_interval_ms(10)
            .with_standby_replicas(1),
        id,
    )
}

fn send_many(cluster: &Cluster, n: usize) {
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    for i in 0..n {
        p.send(
            "events",
            Some(format!("k{}", i % 10).to_bytes()),
            Some(Bytes::from_static(b"x")),
            i as i64,
        )
        .unwrap();
    }
    p.flush().unwrap();
}

#[test]
fn standbys_are_hosted_on_the_other_instance() {
    let s = setup();
    let mut a = app(&s, "a");
    let mut b = app(&s, "b");
    a.start().unwrap();
    b.start().unwrap();
    for _ in 0..5 {
        a.step().unwrap();
        b.step().unwrap();
        s.clock.advance(10);
    }
    // 2 tasks total; each instance runs 1 active and hosts the other's
    // standby.
    assert_eq!(a.task_ids().len(), 1);
    assert_eq!(b.task_ids().len(), 1);
    assert_eq!(a.standby_ids().len(), 1);
    assert_eq!(b.standby_ids().len(), 1);
    assert_ne!(a.task_ids(), a.standby_ids(), "standby ≠ active on one instance");
    a.close().unwrap();
    b.close().unwrap();
}

#[test]
fn standby_tails_changelog_and_is_queryable() {
    let s = setup();
    let mut a = app(&s, "a");
    let mut b = app(&s, "b");
    a.start().unwrap();
    b.start().unwrap();
    send_many(&s.cluster, 100);
    for _ in 0..20 {
        a.step().unwrap();
        b.step().unwrap();
        s.clock.advance(10);
    }
    let applied = a.metrics().standby_records_applied + b.metrics().standby_records_applied;
    assert!(applied >= 100, "standbys replayed the changelog: {applied}");
    // Every key is queryable SOMEWHERE as a standby copy.
    let mut found = 0;
    for k in 0..10 {
        let key = format!("k{k}").to_bytes();
        if a.query_standby_kv("counts", &key).is_some()
            || b.query_standby_kv("counts", &key).is_some()
        {
            found += 1;
        }
    }
    assert_eq!(found, 10, "all keys served by standby replicas");
    a.close().unwrap();
    b.close().unwrap();
}

#[test]
fn failover_promotion_replays_only_the_suffix() {
    let s = setup();
    let mut a = app(&s, "a");
    let mut b = app(&s, "b");
    a.start().unwrap();
    b.start().unwrap();
    // Build up a large changelog.
    send_many(&s.cluster, 400);
    for _ in 0..30 {
        a.step().unwrap();
        b.step().unwrap();
        s.clock.advance(10);
    }
    // a crashes; b must take over a's task.
    a.crash();
    s.clock.advance(SESSION_TIMEOUT_MS + 1);
    b.step().unwrap(); // b heartbeats; only the crashed instance is stale
    s.cluster.abort_expired_transactions();
    s.cluster.group_expire_members("sb-app");
    let restore_before = b.metrics().restore_records;
    for _ in 0..10 {
        b.step().unwrap();
        s.clock.advance(10);
    }
    assert_eq!(b.task_ids().len(), 2, "b owns everything now");
    let delta = b.metrics().restore_records - restore_before;
    assert!(
        delta < 20,
        "promotion from a warm standby must replay only a small suffix, replayed {delta}"
    );
    b.close().unwrap();
}

#[test]
fn cold_failover_without_standby_replays_everything() {
    // Control experiment for the one above: same scenario, standbys off.
    let s = setup();
    let mk = |id: &str| {
        KafkaStreamsApp::new(
            s.cluster.clone(),
            counting_topology(),
            StreamsConfig::new("sb-app").exactly_once().with_commit_interval_ms(10),
            id,
        )
    };
    let mut a = mk("a");
    let mut b = mk("b");
    a.start().unwrap();
    b.start().unwrap();
    send_many(&s.cluster, 400);
    for _ in 0..30 {
        a.step().unwrap();
        b.step().unwrap();
        s.clock.advance(10);
    }
    a.crash();
    s.clock.advance(SESSION_TIMEOUT_MS + 1);
    b.step().unwrap(); // b heartbeats; only the crashed instance is stale
    s.cluster.abort_expired_transactions();
    s.cluster.group_expire_members("sb-app");
    let restore_before = b.metrics().restore_records;
    for _ in 0..10 {
        b.step().unwrap();
        s.clock.advance(10);
    }
    let delta = b.metrics().restore_records - restore_before;
    assert!(delta >= 150, "cold restore replays the whole changelog partition: {delta}");
    b.close().unwrap();
}

#[test]
fn promoted_task_continues_counting_correctly() {
    let s = setup();
    let mut a = app(&s, "a");
    let mut b = app(&s, "b");
    a.start().unwrap();
    b.start().unwrap();
    send_many(&s.cluster, 100); // 10 per key
    for _ in 0..20 {
        a.step().unwrap();
        b.step().unwrap();
        s.clock.advance(10);
    }
    a.crash();
    s.clock.advance(SESSION_TIMEOUT_MS.max(s.cluster.default_txn_timeout_ms()) + 1);
    b.step().unwrap(); // b heartbeats; only the crashed instance is stale
    s.cluster.abort_expired_transactions();
    s.cluster.group_expire_members("sb-app");
    send_many(&s.cluster, 100); // 10 more per key
    for _ in 0..30 {
        b.step().unwrap();
        s.clock.advance(10);
    }
    for k in 0..10 {
        let key = format!("k{k}").to_bytes();
        assert_eq!(
            b.query_kv("counts", &key).map(|v| i64::from_bytes(&v).unwrap()),
            Some(20),
            "key k{k} must count all 20 occurrences across the failover"
        );
    }
    b.close().unwrap();
}

#[test]
fn single_instance_hosts_no_standbys() {
    let s = setup();
    let mut a = app(&s, "solo");
    a.start().unwrap();
    a.step().unwrap();
    assert_eq!(a.task_ids().len(), 2);
    assert!(a.standby_ids().is_empty(), "nowhere else to host replicas");
    a.close().unwrap();
}
