//! Observability consistency across crash + restore: state restoration must
//! show up as `restore_records` (matching the committed changelog length)
//! and must NOT be double-counted as processing work, in both the
//! per-instance `StreamsMetrics` and the global kobs registry.
//!
//! Also home to the ktrace determinism contract: identical seeds produce
//! byte-identical span trees and chrome JSON (serial and multi-worker),
//! and the `kobs-off` feature compiles the span macros to true no-ops
//! (run with `--features kobs-off` to exercise the disabled branches).

use kbroker::{Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig};
use kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig};
use simkit::ManualClock;
use std::sync::{Arc, Mutex};

/// The kobs registry is process-global; tests in this binary that reset and
/// inspect it must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn counting_topology() -> Arc<kstreams::topology::Topology> {
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("events")
        .group_by_key()
        .count("event-counts")
        .to_stream()
        .to("counts");
    Arc::new(builder.build().unwrap())
}

fn eos_config() -> StreamsConfig {
    StreamsConfig::new("obs-app").exactly_once().with_commit_interval_ms(10)
}

fn send_events(cluster: &Cluster, n: usize, ts0: i64) {
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    for i in 0..n {
        p.send(
            "events",
            Some("key".to_string().to_bytes()),
            Some(format!("e{i}").to_bytes()),
            ts0 + i as i64,
        )
        .unwrap();
    }
    p.flush().unwrap();
}

/// Committed (read-committed, markers excluded) record count of a topic —
/// exactly what a restoring task replays from a changelog.
fn committed_len(cluster: &Cluster, topic: &str) -> u64 {
    let mut consumer =
        Consumer::new(cluster.clone(), "obs-verify", ConsumerConfig::default().read_committed());
    consumer.assign(cluster.partitions_of(topic).unwrap()).unwrap();
    let mut n = 0;
    loop {
        let batch = consumer.poll().unwrap();
        if batch.is_empty() {
            return n;
        }
        n += batch.len() as u64;
    }
}

#[test]
fn restore_counters_are_consistent_across_crash_and_restart() {
    let _serial = OBS_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    kobs::reset();

    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(3).replication(3).clock(clock.shared()).build();
    cluster.create_topic("events", TopicConfig::new(1)).unwrap();
    cluster.create_topic("counts", TopicConfig::new(1)).unwrap();

    // First incarnation: processes AND commits 5 records, then crashes.
    send_events(&cluster, 5, 0);
    let first_processed;
    {
        let mut app =
            KafkaStreamsApp::new(cluster.clone(), counting_topology(), eos_config(), "instance-0");
        app.start().unwrap();
        for _ in 0..10 {
            app.step().unwrap();
            clock.advance(10);
        }
        let m = app.metrics();
        first_processed = m.records_processed;
        assert_eq!(m.records_processed, 5, "first incarnation processed the feed");
        assert_eq!(m.restore_records, 0, "nothing to restore on a fresh changelog");
        app.crash();
    }
    clock.advance(kbroker::group::SESSION_TIMEOUT_MS + 1);

    // The committed changelog at restart time is exactly what the second
    // incarnation must replay.
    let changelog_len = committed_len(&cluster, "obs-app-event-counts-changelog");
    assert_eq!(changelog_len, 5, "one committed changelog update per input record");

    // Second incarnation: restores, then processes only the NEW records.
    send_events(&cluster, 3, 100);
    let mut app =
        KafkaStreamsApp::new(cluster.clone(), counting_topology(), eos_config(), "instance-0");
    app.start().unwrap();
    for _ in 0..10 {
        app.step().unwrap();
        clock.advance(10);
    }
    let m = app.metrics();
    assert_eq!(
        m.restore_records, changelog_len,
        "restore_records must equal the committed changelog replay length"
    );
    assert_eq!(
        m.records_processed, 3,
        "replayed changelog records must not be double-counted as processing"
    );
    assert_eq!(first_processed + m.records_processed, 8, "every input processed exactly once");
    app.close().unwrap();

    // The global registry tells the same story: the replay counter sums the
    // restores of both incarnations (0 + 5), and no processing gauge ever
    // included replayed records.
    if kobs::ENABLED {
        let snap = kobs::snapshot();
        assert_eq!(
            snap.counter("kstreams.restore.records_replayed"),
            Some(changelog_len),
            "registry replay counter matches the changelog length"
        );
        assert_eq!(
            snap.counter("kstreams.restore.sessions"),
            Some(1),
            "exactly one non-empty restore session"
        );
        assert_eq!(
            snap.gauge("kstreams.records_processed"),
            Some(3),
            "last published processing gauge excludes replayed records"
        );
        assert_eq!(snap.gauge("kstreams.restore_records"), Some(changelog_len as i64));
    }
}

#[test]
fn commit_cycles_reach_the_registry_histogram() {
    let _serial = OBS_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    kobs::reset();

    let clock = ManualClock::new();
    let cluster = Cluster::builder()
        .brokers(3)
        .replication(3)
        .clock(clock.shared())
        .txn_marker_cost_ms(1.0)
        .build();
    cluster.create_topic("events", TopicConfig::new(2)).unwrap();
    cluster.create_topic("counts", TopicConfig::new(2)).unwrap();
    send_events(&cluster, 8, 0);

    let mut app =
        KafkaStreamsApp::new(cluster.clone(), counting_topology(), eos_config(), "instance-0");
    app.start().unwrap();
    for _ in 0..10 {
        app.step().unwrap();
        clock.advance(10);
    }
    app.close().unwrap();

    if kobs::ENABLED {
        let snap = kobs::snapshot();
        let cycle = snap.hist("kstreams.commit_cycle_ms").expect("commit cycle histogram");
        assert!(cycle.count >= 1, "at least one commit cycle observed");
        let markers = snap.hist("kbroker.txn.phase.markers_ms").expect("marker phase histogram");
        assert!(markers.count >= 1);
        assert!(
            markers.max_ms >= 1,
            "marker fan-out must charge the virtual clock (cost 1 ms/partition)"
        );
        assert!(
            snap.hist("kobs.critical_path.markers_ms").is_some(),
            "span-derived critical-path family observed alongside the phase timers"
        );
    }
}

/// One simtest run's complete trace identity: every flight-recorder tree
/// rendered as text, plus the chrome JSON export of all finished spans.
/// The span store persists after `run` returns (it is reset at the start
/// of the *next* run), so this reads exactly that run's spans.
fn trace_fingerprint(cfg: &simkit::simtest::SimConfig) -> (String, String) {
    let report = simkit::simtest::run(cfg);
    assert!(report.passed(), "fingerprint runs must pass: {report}");
    let trees: String = kobs::ktrace::recent_trees(kobs::ktrace::FLIGHT_RECORDER_TREES)
        .iter()
        .map(kobs::ktrace::render_tree)
        .collect();
    (trees, kobs::trace_export::chrome_json_all())
}

#[test]
fn span_trees_replay_byte_identically() {
    let _serial = OBS_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for workers in [1usize, 4] {
        let cfg = simkit::simtest::SimConfig::new(7).with_steps(150).with_workers(workers);
        let (trees_a, chrome_a) = trace_fingerprint(&cfg);
        let (trees_b, chrome_b) = trace_fingerprint(&cfg);
        assert_eq!(trees_a, trees_b, "span trees diverged on replay (workers={workers})");
        assert_eq!(chrome_a, chrome_b, "chrome JSON diverged on replay (workers={workers})");
        if kobs::ENABLED {
            assert!(!trees_a.is_empty(), "a passing EOS run records commit-cycle trees");
            let events = kobs::trace_export::validate_chrome_json(&chrome_a)
                .expect("replayed export validates");
            assert!(events > 0, "chrome export carries span events");
        }
    }
}

#[test]
fn span_macros_are_noops_when_disabled() {
    let _serial = OBS_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    kobs::reset();
    let root = kobs::span!(5, "kstreams", "cycle", n = 1u64);
    let child = {
        let _in = kobs::ktrace::enter(root);
        let child = kobs::child_span!(5, "worker", "task");
        kobs::ktrace::finish_span(child, 6_000);
        child
    };
    kobs::ktrace::finish_span(root, 6_000);
    if kobs::ENABLED {
        assert_eq!(kobs::ktrace::finished_spans().len(), 2);
        assert_eq!(kobs::ktrace::recent_trees(8).len(), 1);
    } else {
        assert!(root.is_none(), "disabled span! must hand out the NONE handle");
        assert!(child.is_none(), "disabled child_span! must hand out the NONE handle");
        assert!(kobs::ktrace::finished_spans().is_empty(), "no span ever recorded");
        assert!(kobs::ktrace::recent_trees(8).is_empty(), "no tree ever assembled");
        assert!(kobs::ktrace::critical_path_summary().is_none());
        let export = kobs::trace_export::chrome_json_all();
        let events = kobs::trace_export::validate_chrome_json(&export)
            .expect("disabled export is still a well-formed empty trace");
        assert_eq!(events, 0, "disabled export carries no span events");
    }
}
