//! Elastic scaling tests (§3.3): instances joining and leaving mid-stream,
//! task redistribution, state migration, and exactly-once preservation
//! across every membership change.

use bytes::Bytes;
use kbroker::{Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig};
use kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig};
use simkit::ManualClock;
use std::collections::HashMap;
use std::sync::Arc;

fn counting_topology() -> Arc<kstreams::topology::Topology> {
    let builder = StreamsBuilder::new();
    builder.stream::<String, String>("events").group_by_key().count("counts").to_stream().to("out");
    Arc::new(builder.build().unwrap())
}

struct Setup {
    cluster: Cluster,
    clock: ManualClock,
}

fn setup(partitions: u32) -> Setup {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(3).replication(3).clock(clock.shared()).build();
    cluster.create_topic("events", TopicConfig::new(partitions)).unwrap();
    cluster.create_topic("out", TopicConfig::new(partitions)).unwrap();
    Setup { cluster, clock }
}

fn app(s: &Setup, id: &str) -> KafkaStreamsApp {
    app_with(s, id, StreamsConfig::new("scale-app").exactly_once().with_commit_interval_ms(10))
}

fn app_with(s: &Setup, id: &str, config: StreamsConfig) -> KafkaStreamsApp {
    KafkaStreamsApp::new(s.cluster.clone(), counting_topology(), config, id)
}

fn send_round(cluster: &Cluster, keys: usize, round: i64) {
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    for k in 0..keys {
        p.send(
            "events",
            Some(format!("k{k}").to_bytes()),
            Some(Bytes::from_static(b"x")),
            round * 100 + k as i64,
        )
        .unwrap();
    }
    p.flush().unwrap();
}

fn final_counts(cluster: &Cluster) -> (HashMap<String, i64>, usize) {
    let mut c =
        Consumer::new(cluster.clone(), "verify", ConsumerConfig::default().read_committed());
    c.assign(cluster.partitions_of("out").unwrap()).unwrap();
    let mut latest = HashMap::new();
    let mut total = 0;
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            latest.insert(
                String::from_bytes(rec.key.as_ref().unwrap()).unwrap(),
                i64::from_bytes(rec.value.as_ref().unwrap()).unwrap(),
            );
            total += 1;
        }
    }
    (latest, total)
}

#[test]
fn scale_out_redistributes_tasks_and_state() {
    let s = setup(4);
    let mut a = app(&s, "a");
    a.start().unwrap();
    send_round(&s.cluster, 8, 0);
    for _ in 0..10 {
        a.step().unwrap();
        s.clock.advance(10);
    }
    assert_eq!(a.task_ids().len(), 4, "solo instance owns all tasks");

    // Scale out: a second instance joins mid-stream.
    let mut b = app(&s, "b");
    b.start().unwrap();
    send_round(&s.cluster, 8, 1);
    for _ in 0..15 {
        a.step().unwrap();
        b.step().unwrap();
        s.clock.advance(10);
    }
    assert_eq!(a.task_ids().len(), 2, "tasks rebalanced");
    assert_eq!(b.task_ids().len(), 2);
    // The migrated tasks restored their state: counts continue from 1.
    let (latest, total) = final_counts(&s.cluster);
    assert_eq!(total, 16, "no duplicates through the rebalance");
    assert!(latest.values().all(|&v| v == 2), "{latest:?}");
    a.close().unwrap();
    b.close().unwrap();
}

#[test]
fn scale_in_consolidates_without_loss() {
    let s = setup(4);
    let mut a = app(&s, "a");
    let mut b = app(&s, "b");
    a.start().unwrap();
    b.start().unwrap();
    send_round(&s.cluster, 8, 0);
    for _ in 0..15 {
        a.step().unwrap();
        b.step().unwrap();
        s.clock.advance(10);
    }
    // b leaves gracefully; a absorbs its tasks and state.
    b.close().unwrap();
    send_round(&s.cluster, 8, 1);
    for _ in 0..15 {
        a.step().unwrap();
        s.clock.advance(10);
    }
    assert_eq!(a.task_ids().len(), 4);
    let (latest, total) = final_counts(&s.cluster);
    assert_eq!(total, 16);
    assert!(latest.values().all(|&v| v == 2), "{latest:?}");
    a.close().unwrap();
}

#[test]
fn rolling_membership_churn_preserves_exactly_once() {
    let s = setup(4);
    let mut apps: Vec<(String, KafkaStreamsApp)> = Vec::new();
    let mut next_id = 0;
    // 5 phases: add, add, remove, add, remove — traffic after each change,
    // always leaving at least one live instance.
    for phase in 0i64..5 {
        let grow = matches!(phase, 0 | 1 | 3);
        if grow {
            let id = format!("i{next_id}");
            next_id += 1;
            let mut new_app = app(&s, &id);
            new_app.start().unwrap();
            apps.push((id, new_app));
        } else {
            let (_, mut gone) = apps.remove(0);
            gone.close().unwrap();
        }
        send_round(&s.cluster, 8, phase);
        for _ in 0..15 {
            for (_, a) in apps.iter_mut() {
                a.step().unwrap();
            }
            s.clock.advance(10);
        }
    }
    let (latest, total) = final_counts(&s.cluster);
    assert_eq!(total, 8 * 5, "every record exactly once through 5 rebalances");
    assert!(latest.values().all(|&v| v == 5), "{latest:?}");
    for (_, mut a) in apps {
        a.close().unwrap();
    }
}

#[test]
fn sticky_tasks_do_not_restore_on_unrelated_rebalance() {
    // §3.3: "task stickiness to minimize the amount of state migration".
    // A task that stays on its instance through a rebalance must not replay
    // its changelog again.
    let s = setup(4);
    let mut a = app(&s, "a");
    a.start().unwrap();
    send_round(&s.cluster, 8, 0);
    for _ in 0..10 {
        a.step().unwrap();
        s.clock.advance(10);
    }
    let restores_before = a.metrics().restore_records;
    let mut b = app(&s, "b");
    b.start().unwrap();
    for _ in 0..10 {
        a.step().unwrap();
        b.step().unwrap();
        s.clock.advance(10);
    }
    // a kept 2 of its 4 tasks; those two must not have re-restored. (The
    // revoked tasks' metrics are retired, so any increase would come from
    // re-created tasks only.)
    assert_eq!(
        a.metrics().restore_records,
        restores_before,
        "sticky tasks keep their state in place"
    );
    a.close().unwrap();
    b.close().unwrap();
}

#[test]
fn broker_death_mid_rebalance_preserves_exactly_once() {
    // §2.1 failure classes colliding: a broker dies in the middle of a
    // membership change (new instance joining), and a forced rebalance bumps
    // the generation again before anyone has processed the first one.
    // Exactly-once output must survive the pile-up.
    let s = setup(4);
    let mut a = app(&s, "a");
    a.start().unwrap();
    send_round(&s.cluster, 8, 0);
    for _ in 0..10 {
        a.step().unwrap();
        s.clock.advance(10);
    }

    // Membership churn begins: b joins...
    let mut b = app(&s, "b");
    b.start().unwrap();
    // ...and before the new generation is acted on, a broker dies (leaders
    // fail over, the txn coordinator recovers from its replicated log) and
    // the group coordinator forces yet another generation.
    s.cluster.kill_broker(0);
    s.cluster.group_force_rebalance("scale-app");
    send_round(&s.cluster, 8, 1);
    for _ in 0..20 {
        a.step().unwrap();
        b.step().unwrap();
        s.clock.advance(10);
    }

    // The broker returns and traffic continues.
    s.cluster.restore_broker(0);
    send_round(&s.cluster, 8, 2);
    for _ in 0..20 {
        a.step().unwrap();
        b.step().unwrap();
        s.clock.advance(10);
    }

    assert_eq!(a.task_ids().len() + b.task_ids().len(), 4, "all tasks owned");
    let (latest, total) = final_counts(&s.cluster);
    assert_eq!(total, 24, "exactly once through broker death + double rebalance");
    assert!(latest.values().all(|&v| v == 3), "{latest:?}");
    a.close().unwrap();
    b.close().unwrap();
}

#[test]
fn instance_crash_mid_rebalance_recovers_exactly_once() {
    // An instance hard-crashes (no clean close, transactions left dangling)
    // right after joining, mid-rebalance. Once its session expires, the
    // survivor must reclaim every task and the output must stay exactly-once.
    let s = setup(4);
    let mut a = app(&s, "a");
    a.start().unwrap();
    send_round(&s.cluster, 8, 0);
    for _ in 0..10 {
        a.step().unwrap();
        s.clock.advance(10);
    }

    let mut b = app(&s, "b");
    b.start().unwrap();
    a.step().unwrap();
    b.step().unwrap();
    b.crash();

    send_round(&s.cluster, 8, 1);
    // The crashed member only disappears after the session timeout. The
    // survivor keeps heartbeating while virtual time passes, so only the
    // silent member expires.
    for _ in 0..4 {
        s.clock.advance(kbroker::group::SESSION_TIMEOUT_MS / 3);
        a.step().unwrap();
    }
    s.cluster.group_expire_members("scale-app");
    for _ in 0..30 {
        a.step().unwrap();
        s.clock.advance(10);
    }

    assert_eq!(a.task_ids().len(), 4, "survivor owns every task");
    let (latest, total) = final_counts(&s.cluster);
    assert_eq!(total, 16, "exactly once through the mid-rebalance crash");
    assert!(latest.values().all(|&v| v == 2), "{latest:?}");
    a.close().unwrap();
}

#[test]
fn more_instances_than_tasks_leaves_spares_idle() {
    let s = setup(2);
    let mut apps: Vec<KafkaStreamsApp> = (0..4).map(|i| app(&s, &format!("i{i}"))).collect();
    for a in &mut apps {
        a.start().unwrap();
    }
    send_round(&s.cluster, 6, 0);
    for _ in 0..15 {
        for a in &mut apps {
            a.step().unwrap();
        }
        s.clock.advance(10);
    }
    let owned: Vec<usize> = apps.iter().map(|a| a.task_ids().len()).collect();
    assert_eq!(owned.iter().sum::<usize>(), 2, "2 partitions ⇒ 2 tasks total");
    assert!(owned.iter().all(|&n| n <= 1), "{owned:?}");
    let (_, total) = final_counts(&s.cluster);
    assert_eq!(total, 6);
    for a in &mut apps {
        a.close().unwrap();
    }
}

#[test]
fn rolling_restart_battery_preserves_eos_and_unaffected_commits() {
    // The cooperative-rebalancing acceptance battery: a 5-instance fleet is
    // rolled one instance at a time under sustained input. During every
    // departure window the survivors — whose tasks are unaffected by the
    // membership change — must keep committing (zero-pause incremental
    // rebalancing), and the final output must be exactly-once across all
    // ten generations of churn.
    let s = setup(10);
    let ids = ["i0", "i1", "i2", "i3", "i4"];
    let mut apps: Vec<(String, KafkaStreamsApp)> =
        ids.iter().map(|id| (id.to_string(), app(&s, id))).collect();
    for (_, a) in apps.iter_mut() {
        a.start().unwrap();
    }
    let mut rounds: i64 = 0;
    send_round(&s.cluster, 40, rounds);
    rounds += 1;
    for _ in 0..25 {
        for (_, a) in apps.iter_mut() {
            a.step().unwrap();
        }
        s.clock.advance(10);
    }

    for victim in ids {
        // Roll `victim`: graceful close, fleet of 4 keeps processing.
        let idx = apps.iter().position(|(id, _)| id == victim).unwrap();
        let (vid, mut gone) = apps.remove(idx);
        gone.close().unwrap();
        let commits_before: Vec<u64> = apps.iter().map(|(_, a)| a.metrics().commits).collect();
        send_round(&s.cluster, 40, rounds);
        rounds += 1;
        for _ in 0..20 {
            for (_, a) in apps.iter_mut() {
                a.step().unwrap();
            }
            s.clock.advance(10);
        }
        for (i, (sid, a)) in apps.iter().enumerate() {
            assert!(
                a.metrics().commits > commits_before[i],
                "survivor {sid} stopped committing while {victim} was rolled"
            );
        }

        // The replacement rejoins under the same id and the fleet re-settles.
        let mut reborn = app(&s, &vid);
        reborn.start().unwrap();
        apps.push((vid, reborn));
        send_round(&s.cluster, 40, rounds);
        rounds += 1;
        for _ in 0..30 {
            for (_, a) in apps.iter_mut() {
                a.step().unwrap();
            }
            s.clock.advance(10);
        }
    }

    let owned: usize = apps.iter().map(|(_, a)| a.task_ids().len()).sum();
    assert_eq!(owned, 10, "all tasks owned after the full roll");
    let (latest, total) = final_counts(&s.cluster);
    assert_eq!(total, 40 * rounds as usize, "exactly once through ten rebalances");
    assert!(latest.values().all(|&v| v == rounds), "{latest:?}");
    for (_, mut a) in apps {
        a.close().unwrap();
    }
}

#[test]
fn standby_promotion_hands_store_over_without_full_restore() {
    // Satellite regression: when an instance already hosts a standby replica
    // for a task it is newly assigned, promotion must hand the standby's
    // stores over in place — replaying only the changelog suffix written
    // after the standby's last applied offset, not the whole changelog.
    let s = setup(4);
    let cfg = || {
        StreamsConfig::new("scale-app")
            .exactly_once()
            .with_commit_interval_ms(10)
            .with_standby_replicas(1)
    };
    let mut a = app_with(&s, "a", cfg());
    let mut b = app_with(&s, "b", cfg());
    a.start().unwrap();
    b.start().unwrap();
    // Build real state: five rounds, fully settled so the standbys are
    // caught up with everything the actives committed.
    for round in 0..5 {
        send_round(&s.cluster, 8, round);
        for _ in 0..15 {
            a.step().unwrap();
            b.step().unwrap();
            s.clock.advance(10);
        }
    }
    assert!(b.metrics().standby_tasks > 0, "b hosts standby replicas");
    assert!(
        b.metrics().standby_records_applied > 0,
        "standbys tailed the changelog while a was active"
    );
    let restored_before = b.metrics().restore_records;

    // a leaves; b inherits a's tasks — for which it holds warm standbys.
    a.close().unwrap();
    for _ in 0..15 {
        b.step().unwrap();
        s.clock.advance(10);
    }
    assert_eq!(b.task_ids().len(), 4, "b owns every task after a left");
    assert_eq!(
        b.metrics().restore_records,
        restored_before,
        "promotion reused the standby stores: no changelog replay on takeover"
    );

    // The promoted state is correct: counts continue, exactly once.
    send_round(&s.cluster, 8, 5);
    for _ in 0..10 {
        b.step().unwrap();
        s.clock.advance(10);
    }
    let (latest, total) = final_counts(&s.cluster);
    assert_eq!(total, 48, "exactly once through the promotion");
    assert!(latest.values().all(|&v| v == 6), "{latest:?}");
    b.close().unwrap();
}

#[test]
fn simultaneous_joins_coalesce_into_one_generation() {
    // Scaling out by three instances at once must cost ONE generation bump,
    // not three: joins landing inside the coordinator's debounce window are
    // coalesced, so incumbents react to the final membership instead of
    // re-planning after every arrival.
    let s = setup(8);
    let cfg = || {
        StreamsConfig::new("scale-app")
            .exactly_once()
            .with_commit_interval_ms(10)
            .with_rebalance_debounce_ms(50)
    };
    let mut a = app_with(&s, "a", cfg());
    a.start().unwrap();
    // Even the founding join is debounced: no generation until the window
    // elapses.
    assert_eq!(s.cluster.group_generation("scale-app"), 0, "founding join debounced");
    s.clock.advance(60);
    a.step().unwrap();
    assert_eq!(s.cluster.group_generation("scale-app"), 1);
    send_round(&s.cluster, 8, 0);
    for _ in 0..10 {
        a.step().unwrap();
        s.clock.advance(10);
    }
    assert_eq!(a.task_ids().len(), 8, "solo incumbent owns everything");

    // Three instances join back-to-back, inside one debounce window.
    let before = s.cluster.group_generation("scale-app");
    let mut joiners: Vec<KafkaStreamsApp> =
        ["b", "c", "d"].iter().map(|id| app_with(&s, id, cfg())).collect();
    for j in joiners.iter_mut() {
        j.start().unwrap();
    }
    assert_eq!(
        s.cluster.group_generation("scale-app"),
        before,
        "joins inside the window must not bump the generation"
    );

    // The window elapses: all three joins fire as ONE rebalance.
    s.clock.advance(60);
    a.step().unwrap();
    for j in joiners.iter_mut() {
        j.step().unwrap();
    }
    assert_eq!(
        s.cluster.group_generation("scale-app"),
        before + 1,
        "three simultaneous joins must coalesce into exactly one generation bump"
    );

    // Warm-ups replay and hand-overs complete in later (also debounced)
    // generations; the fleet converges to a ±1-balanced assignment.
    send_round(&s.cluster, 8, 1);
    for _ in 0..60 {
        a.step().unwrap();
        for j in joiners.iter_mut() {
            j.step().unwrap();
        }
        s.clock.advance(10);
    }
    let mut owned = vec![a.task_ids().len()];
    owned.extend(joiners.iter().map(|j| j.task_ids().len()));
    assert_eq!(owned.iter().sum::<usize>(), 8, "{owned:?}");
    assert!(owned.iter().all(|&n| n == 2), "±1-balanced fleet: {owned:?}");
    let (latest, total) = final_counts(&s.cluster);
    assert_eq!(total, 16, "exactly once through the coalesced scale-out");
    assert!(latest.values().all(|&v| v == 2), "{latest:?}");
    a.close().unwrap();
    for mut j in joiners {
        j.close().unwrap();
    }
}
