//! The low-level Processor API (§3.2): custom stateful processors attached
//! via `KStream::process`, including store access, downstream forwarding,
//! and punctuation — the extension point the Bloomberg framework builds its
//! "boilerplate" on (§6.1).

use kbroker::{Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig};
use kstreams::processor::{Processor, ProcessorContext};
use kstreams::record::FlowRecord;
use kstreams::state::{StoreKind, StoreSpec};
use kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig};
use simkit::ManualClock;
use std::sync::Arc;

/// Emits an alert when a key's value jumps by more than `threshold`
/// relative to the last seen value — a miniature outlier-signal detector.
struct JumpDetector {
    store: &'static str,
    threshold: i64,
}

impl Processor for JumpDetector {
    fn process(&mut self, ctx: &mut ProcessorContext<'_>, record: FlowRecord) {
        let (Some(key), Some(value)) = (record.key.clone(), record.new.clone()) else {
            return;
        };
        ctx.observe_ts(record.ts);
        let current = i64::from_bytes(&value).expect("i64 value");
        let previous =
            ctx.kv_get(self.store, &key).map(|b| i64::from_bytes(&b).expect("i64 state"));
        ctx.kv_put(self.store, key.clone(), Some(value));
        if let Some(prev) = previous {
            if (current - prev).abs() > self.threshold {
                let alert = format!("jump {prev}->{current}");
                ctx.forward(FlowRecord {
                    key: Some(key),
                    new: Some(alert.to_bytes()),
                    old: None,
                    ts: record.ts,
                });
            }
        }
    }
}

/// Counts punctuation invocations and emits a heartbeat each time.
struct Heartbeat {
    beats: u64,
}

impl Processor for Heartbeat {
    fn process(&mut self, ctx: &mut ProcessorContext<'_>, record: FlowRecord) {
        ctx.forward(record);
    }

    fn punctuate(&mut self, ctx: &mut ProcessorContext<'_>, stream_time: i64, _wall: i64) {
        if stream_time == i64::MIN {
            return; // no records observed yet
        }
        self.beats += 1;
        ctx.forward(FlowRecord {
            key: Some("heartbeat".to_string().to_bytes()),
            new: Some(format!("beat-{}@{stream_time}", self.beats).to_bytes()),
            old: None,
            ts: stream_time,
        });
    }
}

fn setup() -> (Cluster, ManualClock) {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(1).replication(1).clock(clock.shared()).build();
    cluster.create_topic("in", TopicConfig::new(1)).unwrap();
    cluster.create_topic("out", TopicConfig::new(1)).unwrap();
    (cluster, clock)
}

fn send(cluster: &Cluster, key: &str, value: i64, ts: i64) {
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    p.send("in", Some(key.to_string().to_bytes()), Some(value.to_bytes()), ts).unwrap();
    p.flush().unwrap();
}

fn read_values(cluster: &Cluster) -> Vec<String> {
    let mut c = Consumer::new(cluster.clone(), "v", ConsumerConfig::default().read_committed());
    c.assign(cluster.partitions_of("out").unwrap()).unwrap();
    let mut out = Vec::new();
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            out.push(String::from_bytes(rec.value.as_ref().unwrap()).unwrap());
        }
    }
    out
}

#[test]
fn custom_stateful_processor_detects_jumps() {
    let (cluster, clock) = setup();
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, i64>("in")
        .process::<String, String>(
            Arc::new(|| Box::new(JumpDetector { store: "last-seen", threshold: 100 })),
            vec![StoreSpec::new("last-seen", StoreKind::KeyValue)],
        )
        .to("out");
    let mut app = KafkaStreamsApp::new(
        cluster.clone(),
        Arc::new(builder.build().unwrap()),
        StreamsConfig::new("jump-app").exactly_once().with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    for (v, ts) in [(100, 0), (105, 1), (400, 2), (395, 3)] {
        send(&cluster, "sensor", v, ts);
    }
    for _ in 0..10 {
        app.step().unwrap();
        clock.advance(10);
    }
    assert_eq!(read_values(&cluster), vec!["jump 105->400".to_string()]);
    app.close().unwrap();
}

#[test]
fn custom_processor_state_restores_after_crash() {
    let (cluster, clock) = setup();
    let topology = || {
        let builder = StreamsBuilder::new();
        builder
            .stream::<String, i64>("in")
            .process::<String, String>(
                Arc::new(|| Box::new(JumpDetector { store: "last-seen", threshold: 100 })),
                vec![StoreSpec::new("last-seen", StoreKind::KeyValue)],
            )
            .to("out");
        Arc::new(builder.build().unwrap())
    };
    {
        let mut app = KafkaStreamsApp::new(
            cluster.clone(),
            topology(),
            StreamsConfig::new("jump-app").exactly_once().with_commit_interval_ms(10),
            "i0",
        );
        app.start().unwrap();
        send(&cluster, "sensor", 100, 0);
        for _ in 0..10 {
            app.step().unwrap();
            clock.advance(10);
        }
        app.close().unwrap();
    }
    // The next record arrives after a restart: the detector must remember
    // last-seen=100 from the changelog and fire on the jump.
    send(&cluster, "sensor", 300, 1);
    let mut app = KafkaStreamsApp::new(
        cluster.clone(),
        topology(),
        StreamsConfig::new("jump-app").exactly_once().with_commit_interval_ms(10),
        "i1",
    );
    app.start().unwrap();
    for _ in 0..10 {
        app.step().unwrap();
        clock.advance(10);
    }
    assert_eq!(read_values(&cluster), vec!["jump 100->300".to_string()]);
    app.close().unwrap();
}

#[test]
fn punctuation_fires_each_poll_round() {
    let (cluster, clock) = setup();
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, i64>("in")
        .process::<String, String>(Arc::new(|| Box::new(Heartbeat { beats: 0 })), vec![])
        .filter(|k, _| k == "heartbeat")
        .to("out");
    let mut app = KafkaStreamsApp::new(
        cluster.clone(),
        Arc::new(builder.build().unwrap()),
        StreamsConfig::new("hb-app").with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    send(&cluster, "k", 1, 500);
    for _ in 0..5 {
        app.step().unwrap();
        clock.advance(10);
    }
    let beats = read_values(&cluster);
    assert!(beats.len() >= 2, "punctuator ran every poll round: {beats:?}");
    assert!(beats[0].starts_with("beat-1@500"), "{beats:?}");
    app.close().unwrap();
}
