//! DSL operator coverage: the stateless transforms, branching, stream↔table
//! conversions, and flat_map re-keying — each run end-to-end through the
//! exactly-once runtime.

use kbroker::{Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig};
use kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig};
use simkit::ManualClock;
use std::collections::HashMap;
use std::sync::Arc;

struct Setup {
    cluster: Cluster,
    clock: ManualClock,
}

fn setup(out_topics: &[&str]) -> Setup {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(1).replication(1).clock(clock.shared()).build();
    cluster.create_topic("in", TopicConfig::new(2)).unwrap();
    for t in out_topics {
        cluster.create_topic(t, TopicConfig::new(2)).unwrap();
    }
    Setup { cluster, clock }
}

fn send(cluster: &Cluster, key: &str, value: &str, ts: i64) {
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    p.send("in", Some(key.to_string().to_bytes()), Some(value.to_string().to_bytes()), ts).unwrap();
    p.flush().unwrap();
}

fn run_app(s: &Setup, topology: kstreams::topology::Topology, steps: usize) -> KafkaStreamsApp {
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        Arc::new(topology),
        StreamsConfig::new("dsl-app").exactly_once().with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();
    for _ in 0..steps {
        app.step().unwrap();
        s.clock.advance(10);
    }
    app
}

fn read_pairs(cluster: &Cluster, topic: &str) -> Vec<(String, String)> {
    let mut c = Consumer::new(cluster.clone(), "v", ConsumerConfig::default().read_committed());
    c.assign(cluster.partitions_of(topic).unwrap()).unwrap();
    let mut out = Vec::new();
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            out.push((
                String::from_bytes(rec.key.as_ref().unwrap()).unwrap(),
                rec.value.map(|v| String::from_bytes(&v).unwrap()).unwrap_or_default(),
            ));
        }
    }
    out.sort();
    out
}

#[test]
fn branch_splits_disjointly() {
    let s = setup(&["vip", "rest"]);
    let builder = StreamsBuilder::new();
    let stream = builder.stream::<String, String>("in");
    let (vip, rest) = stream.branch(|_k, v| v.starts_with("vip"));
    vip.to("vip");
    rest.to("rest");
    send(&s.cluster, "a", "vip-order", 0);
    send(&s.cluster, "b", "normal-order", 1);
    send(&s.cluster, "c", "vip-refund", 2);
    let mut app = run_app(&s, builder.build().unwrap(), 10);
    assert_eq!(
        read_pairs(&s.cluster, "vip"),
        vec![("a".into(), "vip-order".into()), ("c".into(), "vip-refund".into())]
    );
    assert_eq!(read_pairs(&s.cluster, "rest"), vec![("b".into(), "normal-order".into())]);
    app.close().unwrap();
}

#[test]
fn filter_not_is_the_complement() {
    let s = setup(&["kept"]);
    let builder = StreamsBuilder::new();
    builder.stream::<String, String>("in").filter_not(|_k, v| v.contains("drop")).to("kept");
    send(&s.cluster, "a", "drop-me", 0);
    send(&s.cluster, "b", "keep-me", 1);
    let mut app = run_app(&s, builder.build().unwrap(), 10);
    assert_eq!(read_pairs(&s.cluster, "kept"), vec![("b".into(), "keep-me".into())]);
    app.close().unwrap();
}

#[test]
fn flat_map_rekeys_and_repartitions_for_aggregation() {
    // flat_map fans each record out under new keys; the following count
    // must see co-partitioned data (i.e. a repartition topic is inserted).
    let s = setup(&["word-counts"]);
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("in")
        .flat_map(|_k, sentence| sentence.split(' ').map(|w| (w.to_string(), 1i64)).collect())
        .group_by_key()
        .count("word-count-store")
        .to_stream()
        .to("word-counts");
    let topology = builder.build().unwrap();
    assert_eq!(topology.subtopologies.len(), 2, "flat_map forces a repartition");
    send(&s.cluster, "doc1", "the quick fox", 0);
    send(&s.cluster, "doc2", "the lazy dog", 1);
    let mut app = run_app(&s, topology, 15);
    // Latest count per word.
    let mut latest: HashMap<String, String> = HashMap::new();
    for (k, _) in read_pairs(&s.cluster, "word-counts") {
        latest.insert(k, String::new());
    }
    assert!(latest.contains_key("the"));
    assert_eq!(
        app.query_kv("word-count-store", &"the".to_string().to_bytes())
            .map(|b| i64::from_bytes(&b).unwrap()),
        Some(2),
        "'the' appears in both documents"
    );
    app.close().unwrap();
}

#[test]
fn to_table_materializes_a_stream() {
    let s = setup(&["latest"]);
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("in")
        .to_table("latest-store")
        .map_values(|_k, v| format!("latest:{v}"))
        .to_stream()
        .to("latest");
    send(&s.cluster, "k", "v1", 0);
    send(&s.cluster, "k", "v2", 1);
    let mut app = run_app(&s, builder.build().unwrap(), 10);
    // The table emitted a revision for the overwrite.
    let out = read_pairs(&s.cluster, "latest");
    assert_eq!(out, vec![("k".into(), "latest:v1".into()), ("k".into(), "latest:v2".into())]);
    assert_eq!(
        app.query_kv("latest-store", &"k".to_string().to_bytes())
            .map(|b| String::from_bytes(&b).unwrap()),
        Some("v2".into())
    );
    app.close().unwrap();
}

#[test]
fn to_table_store_has_a_changelog() {
    // Unlike builder.table (source-changelog optimization), a mid-topology
    // to_table cannot reuse a source topic: it gets a changelog.
    let builder = StreamsBuilder::new();
    builder.stream::<String, String>("in").to_table("mid-store");
    let topology = builder.build().unwrap();
    assert!(topology.internal_topics.iter().any(|t| t.name == "mid-store-changelog"));
}

#[test]
fn peek_observes_without_altering() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let s = setup(&["out"]);
    let seen = Arc::new(AtomicUsize::new(0));
    let seen2 = seen.clone();
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("in")
        .peek(move |_k, _v| {
            seen2.fetch_add(1, Ordering::Relaxed);
        })
        .to("out");
    send(&s.cluster, "a", "x", 0);
    send(&s.cluster, "b", "y", 1);
    let mut app = run_app(&s, builder.build().unwrap(), 10);
    assert_eq!(seen.load(Ordering::Relaxed), 2);
    assert_eq!(read_pairs(&s.cluster, "out").len(), 2);
    app.close().unwrap();
}

#[test]
fn select_key_then_count_repartitions() {
    let s = setup(&["by-prefix"]);
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("in")
        .select_key(|_k, v| v.chars().next().unwrap_or('?').to_string())
        .group_by_key()
        .count("prefix-counts")
        .to_stream()
        .to("by-prefix");
    let topology = builder.build().unwrap();
    assert_eq!(topology.subtopologies.len(), 2);
    send(&s.cluster, "x", "apple", 0);
    send(&s.cluster, "y", "avocado", 1);
    send(&s.cluster, "z", "banana", 2);
    let mut app = run_app(&s, topology, 15);
    assert_eq!(
        app.query_kv("prefix-counts", &"a".to_string().to_bytes())
            .map(|b| i64::from_bytes(&b).unwrap()),
        Some(2)
    );
    app.close().unwrap();
}
