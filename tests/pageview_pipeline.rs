//! End-to-end test of the paper's running example (Figures 2 and 3):
//! filter → map → groupByKey → windowedBy(5s) → count → to, executed on an
//! in-process cluster with a repartition topic between the two
//! sub-topologies.

use kbroker::{Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig};
use kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig, TimeWindows, Windowed};
use simkit::ManualClock;
use std::collections::HashMap;
use std::sync::Arc;

/// The pageview pipeline of Figure 2, in this crate's DSL.
fn pageview_topology() -> Arc<kstreams::topology::Topology> {
    let builder = StreamsBuilder::new();
    // Value = (category, period_ms); key = user id.
    let views = builder.stream::<String, (String, i64)>("pageview-events");
    views
        .filter(|_user, (_cat, period)| *period >= 30_000)
        .map(|_user, (cat, period)| (cat.clone(), *period))
        .group_by_key()
        .windowed_by(TimeWindows::of(5000).grace(10_000))
        .count("pageview-counts")
        .to_stream()
        .to("pageview-windowed-counts");
    Arc::new(builder.build().expect("valid topology"))
}

fn setup() -> (Cluster, ManualClock) {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(3).replication(3).clock(clock.shared()).build();
    // Figure 3's setup: source has 2 partitions, sink has 3.
    cluster.create_topic("pageview-events", TopicConfig::new(2)).unwrap();
    cluster.create_topic("pageview-windowed-counts", TopicConfig::new(3)).unwrap();
    (cluster, clock)
}

fn send_view(p: &mut Producer, user: &str, cat: &str, period: i64, ts: i64) {
    p.send(
        "pageview-events",
        Some(user.to_string().to_bytes()),
        Some((cat.to_string(), period).to_bytes()),
        ts,
    )
    .unwrap();
}

/// Drain all current output records into (category, window_start) → count.
fn read_counts(cluster: &Cluster) -> HashMap<(String, i64), i64> {
    let mut consumer =
        Consumer::new(cluster.clone(), "verifier", ConsumerConfig::default().read_committed());
    consumer.assign(cluster.partitions_of("pageview-windowed-counts").unwrap()).unwrap();
    let mut out = HashMap::new();
    loop {
        let batch = consumer.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            let wk = Windowed::<String>::from_bytes(rec.key.as_ref().unwrap()).unwrap();
            let count = i64::from_bytes(rec.value.as_ref().unwrap()).unwrap();
            out.insert((wk.key, wk.window_start), count);
        }
    }
    out
}

#[test]
fn figure2_pipeline_counts_per_category_window() {
    let (cluster, clock) = setup();
    let topology = pageview_topology();

    let mut producer = Producer::new(cluster.clone(), ProducerConfig::default());
    // Two users (different source partitions), three categories.
    send_view(&mut producer, "alice", "news", 45_000, 1_000);
    send_view(&mut producer, "bob", "news", 31_000, 2_000);
    send_view(&mut producer, "alice", "sports", 60_000, 3_000);
    send_view(&mut producer, "bob", "sports", 10_000, 4_000); // filtered out
    send_view(&mut producer, "alice", "news", 90_000, 6_000); // next window
    producer.flush().unwrap();

    let mut app = KafkaStreamsApp::new(
        cluster.clone(),
        topology.clone(),
        StreamsConfig::new("pageview-app").exactly_once().with_commit_interval_ms(10),
        "instance-0",
    );
    app.start().unwrap();
    // Two sub-topologies (Figure 3): 2 upstream tasks + 2 repartition tasks
    // (repartition topic defaults to the max source partition count).
    assert_eq!(app.task_ids().len(), 4);
    for _ in 0..20 {
        app.step().unwrap();
        clock.advance(10);
    }
    app.close().unwrap();

    let counts = read_counts(&cluster);
    assert_eq!(counts[&("news".to_string(), 0)], 2, "two long news views in [0,5s)");
    assert_eq!(counts[&("sports".to_string(), 0)], 1, "short sports view filtered");
    assert_eq!(counts[&("news".to_string(), 5000)], 1, "view at 6s lands in [5s,10s)");
}

#[test]
fn topology_matches_figure3_shape() {
    let topology = pageview_topology();
    assert_eq!(topology.subtopologies.len(), 2, "split at the repartition topic");
    let desc = topology.describe();
    assert!(desc.contains("pageview-events"), "{desc}");
    assert!(desc.contains("repartition"), "{desc}");
    assert!(desc.contains("pageview-windowed-counts"), "{desc}");
    // The aggregation store lives in the second sub-topology.
    assert_eq!(topology.stores["pageview-counts"].1, 1);
}

#[test]
fn incremental_processing_across_steps() {
    let (cluster, clock) = setup();
    let topology = pageview_topology();
    let mut app = KafkaStreamsApp::new(
        cluster.clone(),
        topology,
        StreamsConfig::new("pageview-app").with_commit_interval_ms(10),
        "instance-0",
    );
    app.start().unwrap();

    let mut producer = Producer::new(cluster.clone(), ProducerConfig::default());
    send_view(&mut producer, "alice", "news", 50_000, 1_000);
    producer.flush().unwrap();
    for _ in 0..10 {
        app.step().unwrap();
        clock.advance(10);
    }
    assert_eq!(read_counts(&cluster)[&("news".to_string(), 0)], 1);

    // More records arrive later; counts keep evolving.
    send_view(&mut producer, "bob", "news", 50_000, 1_500);
    producer.flush().unwrap();
    for _ in 0..10 {
        app.step().unwrap();
        clock.advance(10);
    }
    assert_eq!(read_counts(&cluster)[&("news".to_string(), 0)], 2);
    app.close().unwrap();
}
