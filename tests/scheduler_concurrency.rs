//! Concurrency battery for the work-stealing task scheduler: exactly-once
//! must hold for every worker count, through crashes landing mid-steal,
//! through rebalances arriving while parallel cycles run — and the final
//! store contents must be bit-identical to serial execution.
//!
//! Two scheduler flavors are exercised:
//! * `Threaded` — real OS worker threads (the deployment shape),
//! * `Virtual` — the seed-driven deterministic serialization `simtest`
//!   uses; its shuffled per-round visit order makes idle workers steal from
//!   slower peers, so crash points reliably land between stolen task
//!   executions.

use bytes::Bytes;
use kbroker::{Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig};
use kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig};
use simkit::ManualClock;
use std::collections::BTreeMap;
use std::sync::Arc;

fn counting_topology() -> Arc<kstreams::topology::Topology> {
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("events")
        .group_by_key()
        .count("counts-store")
        .to_stream()
        .to("out");
    Arc::new(builder.build().unwrap())
}

struct Setup {
    cluster: Cluster,
    clock: ManualClock,
}

fn setup(partitions: u32) -> Setup {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(3).replication(3).clock(clock.shared()).build();
    cluster.create_topic("events", TopicConfig::new(partitions)).unwrap();
    cluster.create_topic("out", TopicConfig::new(partitions)).unwrap();
    Setup { cluster, clock }
}

/// Feed `n` records over `keys` distinct keys with monotone timestamps.
fn feed(cluster: &Cluster, n: usize, keys: usize) {
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    for i in 0..n {
        p.send(
            "events",
            Some(format!("k{}", i % keys).to_bytes()),
            Some(Bytes::from_static(b"x")),
            i as i64,
        )
        .unwrap();
    }
    p.flush().unwrap();
}

fn config(app_id: &str, workers: usize, seed: Option<u64>) -> StreamsConfig {
    let mut cfg = StreamsConfig::new(app_id).exactly_once().with_commit_interval_ms(10);
    if workers > 1 {
        cfg = cfg.with_num_worker_threads(workers);
        if let Some(seed) = seed {
            cfg = cfg.with_deterministic_scheduler(seed);
        }
    }
    cfg
}

/// Step the apps (advancing the virtual clock) until the group's committed
/// input offsets reach the log end, bounded so a stuck run fails loudly.
fn run_until_committed(
    apps: &mut [KafkaStreamsApp],
    cluster: &Cluster,
    clock: &ManualClock,
    app_id: &str,
) {
    let targets: Vec<_> = cluster
        .partitions_of("events")
        .unwrap()
        .into_iter()
        .map(|tp| {
            let end = cluster.latest_offset(&tp).unwrap();
            (tp, end)
        })
        .collect();
    for _ in 0..2_000 {
        for app in apps.iter_mut() {
            app.step().unwrap();
        }
        clock.advance(20);
        let done = targets.iter().all(|(tp, end)| {
            cluster.group_committed_offset(app_id, tp).ok().flatten().unwrap_or(0) >= *end
        });
        if done {
            return;
        }
    }
    panic!("apps did not commit the whole input within the step bound");
}

/// Committed per-key counts plus total committed outputs.
fn read_output(cluster: &Cluster) -> (BTreeMap<String, i64>, usize) {
    let mut consumer =
        Consumer::new(cluster.clone(), "verify", ConsumerConfig::default().read_committed());
    consumer.assign(cluster.partitions_of("out").unwrap()).unwrap();
    let mut latest = BTreeMap::new();
    let mut total = 0;
    loop {
        let batch = consumer.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            let k = String::from_bytes(rec.key.as_ref().unwrap()).unwrap();
            let v = i64::from_bytes(rec.value.as_ref().unwrap()).unwrap();
            latest.insert(k, v);
            total += 1;
        }
    }
    (latest, total)
}

fn assert_exactly_once(cluster: &Cluster, records: usize, keys: usize) {
    let (latest, total) = read_output(cluster);
    assert_eq!(total, records, "exactly one committed output per input");
    assert_eq!(latest.len(), keys);
    let expected = (records / keys) as i64;
    assert!(latest.values().all(|&v| v == expected), "every key counted to {expected}: {latest:?}");
}

/// N-worker × M-partition sweep with real OS worker threads: exactly-once
/// holds for every combination, including workers > tasks.
#[test]
fn threaded_worker_partition_sweep_is_exactly_once() {
    const RECORDS: usize = 400;
    const KEYS: usize = 16;
    for &partitions in &[1u32, 4, 8] {
        for &workers in &[1usize, 2, 4, 8] {
            let s = setup(partitions);
            feed(&s.cluster, RECORDS, KEYS);
            let mut app = KafkaStreamsApp::new(
                s.cluster.clone(),
                counting_topology(),
                config("sweep-app", workers, None),
                "i0",
            );
            app.start().unwrap();
            let mut apps = vec![app];
            run_until_committed(&mut apps, &s.cluster, &s.clock, "sweep-app");
            apps.pop().unwrap().close().unwrap();
            assert_exactly_once(&s.cluster, RECORDS, KEYS);
        }
    }
}

/// Crash the instance while the deterministic scheduler is mid-sweep (the
/// 4-worker / 6-task layout plus shuffled visit order steals early and
/// often), then restart under the same id: the epoch bump fences the dead
/// incarnation and the committed output stays exactly-once.
#[test]
fn crash_mid_steal_recovers_exactly_once() {
    const RECORDS: usize = 600;
    const KEYS: usize = 24;
    let s = setup(6);
    feed(&s.cluster, RECORDS, KEYS);
    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        counting_topology(),
        config("steal-app", 4, Some(11)),
        "i0",
    );
    app.start().unwrap();
    // A handful of parallel cycles: enough to open a transaction and
    // accumulate stolen task executions, not enough to finish.
    for _ in 0..5 {
        app.step().unwrap();
        s.clock.advance(5);
    }
    assert!(app.metrics().scheduler_steals > 0, "uneven layout must steal before the crash");
    app.crash();

    let mut app = KafkaStreamsApp::new(
        s.cluster.clone(),
        counting_topology(),
        config("steal-app", 4, Some(11)),
        "i0",
    );
    app.start().unwrap();
    let mut apps = vec![app];
    run_until_committed(&mut apps, &s.cluster, &s.clock, "steal-app");
    apps.pop().unwrap().close().unwrap();
    assert_exactly_once(&s.cluster, RECORDS, KEYS);
}

/// A second instance joins (forcing a rebalance) while the first is running
/// parallel cycles: the overtaken generation's transaction aborts, tasks
/// migrate, and the committed output stays exactly-once.
#[test]
fn rebalance_while_parallel_is_exactly_once() {
    const RECORDS: usize = 600;
    const KEYS: usize = 24;
    let s = setup(8);
    feed(&s.cluster, RECORDS, KEYS);
    let mut a = KafkaStreamsApp::new(
        s.cluster.clone(),
        counting_topology(),
        config("reb-app", 4, None),
        "i0",
    );
    a.start().unwrap();
    for _ in 0..3 {
        a.step().unwrap();
        s.clock.advance(5);
    }
    // i1 joins mid-flight: i0's next commit hits IllegalGeneration, aborts,
    // and both instances re-form on the new generation. Cooperative
    // rebalancing transfers i1's share only after its warm-ups catch up, so
    // step until the deferred transfer lands before checking the split.
    let mut b = KafkaStreamsApp::new(
        s.cluster.clone(),
        counting_topology(),
        config("reb-app", 4, None),
        "i1",
    );
    b.start().unwrap();
    let mut apps = vec![a, b];
    for _ in 0..100 {
        if apps.iter().all(|app| !app.task_ids().is_empty()) {
            break;
        }
        for app in apps.iter_mut() {
            app.step().unwrap();
        }
        s.clock.advance(20);
    }
    run_until_committed(&mut apps, &s.cluster, &s.clock, "reb-app");
    let owned: usize = apps.iter().map(|app| app.task_ids().len()).sum();
    assert_eq!(owned, 8, "all tasks live across the two instances");
    assert!(apps.iter().all(|app| !app.task_ids().is_empty()), "work split across instances");
    for mut app in apps {
        app.close().unwrap();
    }
    assert_exactly_once(&s.cluster, RECORDS, KEYS);
}

/// Stress: the same workload through serial, virtual (several steal
/// schedules), and threaded execution must leave byte-identical stores.
/// Store dumps are `(changelog key, value)` lists in key order, so this is
/// a direct store-content fingerprint comparison.
#[test]
fn parallel_store_dumps_match_serial() {
    const RECORDS: usize = 800;
    const KEYS: usize = 32;

    let run = |workers: usize, seed: Option<u64>| {
        let s = setup(8);
        feed(&s.cluster, RECORDS, KEYS);
        let mut app = KafkaStreamsApp::new(
            s.cluster.clone(),
            counting_topology(),
            config("dump-app", workers, seed),
            "i0",
        );
        app.start().unwrap();
        let mut apps = vec![app];
        run_until_committed(&mut apps, &s.cluster, &s.clock, "dump-app");
        let mut app = apps.pop().unwrap();
        let dump = app.dump_stores();
        let steals = app.metrics().scheduler_steals;
        app.close().unwrap();
        let (latest, total) = read_output(&s.cluster);
        (dump, steals, latest, total)
    };

    let (serial_dump, _, serial_latest, serial_total) = run(1, None);
    assert_eq!(serial_total, RECORDS);
    let mut steal_schedules_seen = 0u64;
    for (workers, seed) in [(2, Some(1)), (4, Some(2)), (4, Some(3)), (8, Some(4)), (4, None)] {
        let (dump, steals, latest, total) = run(workers, seed);
        assert_eq!(
            dump, serial_dump,
            "workers={workers} seed={seed:?}: final stores diverged from serial"
        );
        assert_eq!(latest, serial_latest);
        assert_eq!(total, serial_total, "committed output count diverged");
        steal_schedules_seen += u64::from(steals > 0);
    }
    assert!(steal_schedules_seen > 0, "at least one schedule must actually exercise stealing");
}
