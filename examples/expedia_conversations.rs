//! Expedia Conversational Platform-style micro-service chain (§6.2).
//!
//! Two independent exactly-once applications connected only through Kafka
//! topics — the loosely-coupled event-driven architecture of §1/§6.2:
//!
//! 1. **enrichment service** (commit interval 100 ms): PII redaction,
//!    localization, translation — each conversation message traverses the
//!    hop with sub-second latency;
//! 2. **conversation-view service** (commit interval 1500 ms, output
//!    suppression): maintains an aggregated view of each conversation,
//!    consolidating revision storms before they hit downstream consumers.
//!
//! Every message must be processed exactly once — "otherwise undesirable
//! outcomes such as double payment for a ticket … could happen".
//!
//! Run with: `cargo run --example expedia_conversations`

use kstream_repro::kbroker::{
    Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig,
};
use kstream_repro::kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig};
use kstream_repro::simkit::ManualClock;
use std::sync::Arc;

fn main() {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(3).replication(3).clock(clock.shared()).build();
    for t in ["conversations", "enriched", "conversation-views"] {
        cluster.create_topic(t, TopicConfig::new(2)).unwrap();
    }

    // Service 1: enrichment chain.
    let b1 = StreamsBuilder::new();
    b1.stream::<String, String>("conversations")
        .map_values(|_conv, msg| msg.replace("my SSN is 123-45-6789", "[PII redacted]"))
        .map_values(|_conv, msg| format!("[en-US] {msg}"))
        .map_values(|_conv, msg| format!("[nlp-intent:booking] {msg}"))
        .to("enriched");
    let enrich_topology = Arc::new(b1.build().unwrap());

    // Service 2: conversation view — count of messages + latest message —
    // with suppression to cut downstream I/O.
    let b2 = StreamsBuilder::new();
    b2.stream::<String, String>("enriched")
        .group_by_key()
        .aggregate(
            "view-store",
            || (0i64, String::new()),
            |msg, (count, _last)| (count + 1, msg.clone()),
        )
        .suppress_until_time_limit(1_500)
        .map_values(|conv, (count, last)| format!("{conv}: {count} msgs, last= {last}"))
        .to_stream()
        .to("conversation-views");
    let view_topology = Arc::new(b2.build().unwrap());

    let mut enricher = KafkaStreamsApp::new(
        cluster.clone(),
        enrich_topology,
        StreamsConfig::new("cp-enrich").exactly_once().with_commit_interval_ms(100),
        "svc-a",
    );
    let mut viewer = KafkaStreamsApp::new(
        cluster.clone(),
        view_topology,
        StreamsConfig::new("cp-views").exactly_once().with_commit_interval_ms(1_500),
        "svc-b",
    );
    enricher.start().unwrap();
    viewer.start().unwrap();

    // A customer conversation unfolds over ~6 seconds.
    let dialogue = [
        (0, "conv-42", "Hi, I need to change my flight"),
        (800, "conv-42", "my SSN is 123-45-6789"),
        (1_600, "conv-42", "the booking reference is XYZ123"),
        (2_400, "conv-7", "Cancel my hotel please"),
        (3_200, "conv-42", "next Tuesday works"),
        (4_000, "conv-7", "yes, the Lisbon one"),
    ];
    let mut customer = Producer::new(cluster.clone(), ProducerConfig::default());
    let mut t = 0i64;
    let mut dialogue_iter = dialogue.iter().peekable();
    while t < 8_000 {
        while let Some((ts, conv, msg)) = dialogue_iter.peek() {
            if *ts <= t {
                customer
                    .send(
                        "conversations",
                        Some(conv.to_string().to_bytes()),
                        Some(msg.to_string().to_bytes()),
                        *ts,
                    )
                    .unwrap();
                dialogue_iter.next();
            } else {
                break;
            }
        }
        customer.flush().unwrap();
        enricher.step().unwrap();
        viewer.step().unwrap();
        clock.advance(50);
        t += 50;
    }

    println!("=== enriched stream (each message exactly once, PII gone) ===");
    let mut c = Consumer::new(cluster.clone(), "r1", ConsumerConfig::default().read_committed());
    c.assign(cluster.partitions_of("enriched").unwrap()).unwrap();
    let mut enriched_count = 0;
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            let conv = String::from_bytes(rec.key.as_ref().unwrap()).unwrap();
            let msg = String::from_bytes(rec.value.as_ref().unwrap()).unwrap();
            println!("  {conv}: {msg}");
            assert!(!msg.contains("123-45-6789"), "PII must be redacted");
            enriched_count += 1;
        }
    }
    assert_eq!(enriched_count, dialogue.len());

    println!("\n=== conversation views (suppressed: one consolidated update per interval) ===");
    let mut c2 = Consumer::new(cluster.clone(), "r2", ConsumerConfig::default().read_committed());
    c2.assign(cluster.partitions_of("conversation-views").unwrap()).unwrap();
    let mut view_updates = 0;
    loop {
        let batch = c2.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            println!("  {}", String::from_bytes(rec.value.as_ref().unwrap()).unwrap());
            view_updates += 1;
        }
    }
    println!(
        "\n{} input messages -> {} suppressed view updates ({} revisions absorbed)",
        dialogue.len(),
        view_updates,
        viewer.metrics().suppressed
    );
    assert!(view_updates < dialogue.len(), "suppression must consolidate updates");
    enricher.close().unwrap();
    viewer.close().unwrap();
}
