//! The §6.1 "state catalog service": an independent application that
//! replays another application's state changelog topics to serve current
//! and historical state snapshots.
//!
//! "It is implemented as another Kafka Streams application that replays the
//! state changelog topics produced by the previous application … Since the
//! changelogs across state stores are appended in atomic transactions,
//! replaying them with a read-committed consumer generates consistent
//! historical snapshots."
//!
//! The catalog below tails the counting app's changelog with a
//! read-committed consumer and snapshots the materialized state after every
//! transaction boundary it observes — each snapshot is guaranteed to be a
//! transactionally consistent view.
//!
//! Run with: `cargo run --example state_catalog`

use kstream_repro::kbroker::{
    Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig,
};
use kstream_repro::kstreams::{KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig};
use kstream_repro::simkit::{Clock as _, ManualClock};
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(3).replication(3).clock(clock.shared()).build();
    cluster.create_topic("orders", TopicConfig::new(1)).unwrap();
    cluster.create_topic("order-counts", TopicConfig::new(1)).unwrap();

    // The "previous application": an exactly-once per-customer order counter.
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("orders")
        .group_by_key()
        .count("order-count-store")
        .to_stream()
        .to("order-counts");
    let mut app = KafkaStreamsApp::new(
        cluster.clone(),
        Arc::new(builder.build().unwrap()),
        StreamsConfig::new("orders-app").exactly_once().with_commit_interval_ms(200),
        "i0",
    );
    app.start().unwrap();

    // The state catalog: a read-committed consumer over the changelog.
    let changelog_topic = "orders-app-order-count-store-changelog";
    let mut catalog =
        Consumer::new(cluster.clone(), "state-catalog", ConsumerConfig::default().read_committed());
    let mut live_view: BTreeMap<String, i64> = BTreeMap::new();
    let mut snapshots: Vec<(i64, BTreeMap<String, i64>)> = Vec::new();

    let mut producer = Producer::new(cluster.clone(), ProducerConfig::default());
    let orders = [
        ("alice", 0),
        ("bob", 50),
        ("alice", 120),
        ("carol", 300),
        ("alice", 450),
        ("bob", 500),
        ("carol", 700),
        ("alice", 900),
    ];
    let mut fed = 0;
    let mut catalog_assigned = false;
    for tick in 0..120 {
        let now = clock.now_ms();
        while fed < orders.len() && orders[fed].1 <= now {
            let (customer, ts) = orders[fed];
            producer
                .send(
                    "orders",
                    Some(customer.to_string().to_bytes()),
                    Some("order".to_string().to_bytes()),
                    ts,
                )
                .unwrap();
            fed += 1;
        }
        producer.flush().unwrap();
        app.step().unwrap();
        // The changelog topic exists once the app has started; assign late.
        if !catalog_assigned && cluster.topic_exists(changelog_topic) {
            catalog.assign(cluster.partitions_of(changelog_topic).unwrap()).unwrap();
            catalog_assigned = true;
        }
        if catalog_assigned {
            let batch = catalog.poll().unwrap();
            if !batch.is_empty() {
                for rec in &batch {
                    let customer = String::from_bytes(rec.key.as_ref().unwrap()).unwrap();
                    match rec.value.as_ref() {
                        Some(v) => {
                            live_view.insert(customer, i64::from_bytes(v).unwrap());
                        }
                        None => {
                            live_view.remove(&customer);
                        }
                    }
                }
                // Records arrive in committed-transaction units; snapshot
                // after absorbing each poll of committed data.
                snapshots.push((now, live_view.clone()));
            }
        }
        clock.advance(10);
        let _ = tick;
    }
    app.close().unwrap();

    println!("=== historical snapshots (each transactionally consistent) ===");
    for (ts, snap) in &snapshots {
        let view: Vec<String> = snap.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("t={ts:>5}ms  {}", view.join("  "));
    }
    println!("\n=== current state served from the catalog (not the app!) ===");
    for (customer, count) in &live_view {
        println!("{customer}: {count} orders");
    }
    assert_eq!(live_view.get("alice"), Some(&4));
    assert_eq!(live_view.get("bob"), Some(&2));
    assert_eq!(live_view.get("carol"), Some(&2));
    assert!(snapshots.len() >= 2, "multiple historical snapshots were captured");
}
