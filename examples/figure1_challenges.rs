//! Figure 1 — the two streaming correctness challenges, made executable.
//!
//! Part 1 (**consistency**, Figure 1.a–c): a stateful counter crashes after
//! updating its state but before committing its input offsets. We run the
//! identical failure under at-least-once and exactly-once processing and
//! print the resulting counts: ALOS double-updates, EOS does not.
//!
//! Part 2 (**completeness**, Figure 1.d): records with timestamps 11, 13
//! arrive, results are emitted, then an out-of-order record at 12 shows the
//! earlier results were incomplete — Kafka Streams revises them instead of
//! having delayed them.
//!
//! Run with: `cargo run --example figure1_challenges`

use kstream_repro::kbroker::{
    group::SESSION_TIMEOUT_MS, Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig,
    TopicConfig,
};
use kstream_repro::kstreams::topology::Topology;
use kstream_repro::kstreams::{
    KSerde, KafkaStreamsApp, ProcessingGuarantee, StreamsBuilder, StreamsConfig, TimeWindows,
    Windowed,
};
use kstream_repro::simkit::ManualClock;
use std::sync::Arc;

fn counter_topology() -> Arc<Topology> {
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("events")
        .group_by_key()
        .count("counts-store")
        .to_stream()
        .to("counts");
    Arc::new(builder.build().unwrap())
}

fn crash_scenario(guarantee: ProcessingGuarantee) -> i64 {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(3).replication(3).clock(clock.shared()).build();
    cluster.create_topic("events", TopicConfig::new(1)).unwrap();
    cluster.create_topic("counts", TopicConfig::new(1)).unwrap();

    // Three input records (Figure 1.a uses three as well).
    let mut p = Producer::new(cluster.clone(), ProducerConfig::default());
    for ts in [11, 13, 12] {
        p.send("events", Some("k".to_string().to_bytes()), Some("v".to_string().to_bytes()), ts)
            .unwrap();
    }
    p.flush().unwrap();

    let mut config = StreamsConfig::new("fig1")
        .with_commit_interval_ms(1_000_000) // never commits before the crash
        .with_producer_batch_size(1);
    if guarantee == ProcessingGuarantee::ExactlyOnce {
        config = config.exactly_once();
    }
    // Instance 0 processes everything (state updated, outputs flushed) but
    // crashes before acknowledging its input (Figure 1.b).
    let mut doomed = KafkaStreamsApp::new(cluster.clone(), counter_topology(), config, "i0");
    doomed.start().unwrap();
    for _ in 0..5 {
        doomed.step().unwrap();
        clock.advance(10);
    }
    doomed.crash();

    // The platform cleans up: group session expires, dangling transaction
    // times out and is aborted by the coordinator.
    clock.advance(SESSION_TIMEOUT_MS.max(cluster.default_txn_timeout_ms()) + 1);
    cluster.group_expire_members("fig1");
    cluster.abort_expired_transactions();

    // Recovery (Figure 1.c): a fresh instance restores state from the
    // changelog and re-fetches the unacknowledged input.
    let mut config2 =
        StreamsConfig::new("fig1").with_commit_interval_ms(10).with_producer_batch_size(1);
    if guarantee == ProcessingGuarantee::ExactlyOnce {
        config2 = config2.exactly_once();
    }
    let mut recovery = KafkaStreamsApp::new(cluster.clone(), counter_topology(), config2, "i1");
    recovery.start().unwrap();
    for _ in 0..10 {
        recovery.step().unwrap();
        clock.advance(10);
    }
    let count = recovery
        .query_kv("counts-store", &"k".to_string().to_bytes())
        .map_or(0, |b| i64::from_bytes(&b).unwrap());
    recovery.close().unwrap();
    count
}

fn completeness_scenario() {
    println!("--- Part 2: completeness with out-of-order data (Figure 1.d) ---");
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(1).replication(1).clock(clock.shared()).build();
    cluster.create_topic("events", TopicConfig::new(1)).unwrap();
    cluster.create_topic("out", TopicConfig::new(1)).unwrap();
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("events")
        .group_by_key()
        .windowed_by(TimeWindows::of(5_000).grace(10_000))
        .count("win")
        .to_stream()
        .to("out");
    let topology = Arc::new(builder.build().unwrap());
    let mut app = KafkaStreamsApp::new(
        cluster.clone(),
        topology,
        StreamsConfig::new("fig1d").exactly_once().with_commit_interval_ms(10),
        "i0",
    );
    app.start().unwrap();

    let mut probe =
        Consumer::new(cluster.clone(), "probe", ConsumerConfig::default().read_committed());
    probe.assign(cluster.partitions_of("out").unwrap()).unwrap();

    let mut producer = Producer::new(cluster.clone(), ProducerConfig::default());
    for ts in [11_000i64, 13_000, 12_000] {
        producer
            .send("events", Some("k".to_string().to_bytes()), Some("v".to_string().to_bytes()), ts)
            .unwrap();
        producer.flush().unwrap();
        for _ in 0..3 {
            app.step().unwrap();
            clock.advance(10);
        }
        for rec in probe.poll().unwrap() {
            let wk = Windowed::<String>::from_bytes(rec.key.as_ref().unwrap()).unwrap();
            let count = i64::from_bytes(rec.value.as_ref().unwrap()).unwrap();
            let kind = if ts == 12_000 { "REVISION" } else { "result " };
            println!(
                "input ts={ts:>6} -> {kind} window[{},{})s count={count}",
                wk.window_start / 1000,
                wk.window_start / 1000 + 5
            );
        }
    }
    app.close().unwrap();
    println!("the out-of-order record at ts=12000 did not block anything — it");
    println!("produced a revision of the previously emitted (incomplete) result.");
}

fn main() {
    println!("--- Part 1: consistency under a crash (Figure 1.a-c) ---");
    println!("3 input records; processor crashes after state update, before ack.\n");
    let alos = crash_scenario(ProcessingGuarantee::AtLeastOnce);
    println!("at-least-once : count = {alos}   (double update! state counted records twice)");
    let eos = crash_scenario(ProcessingGuarantee::ExactlyOnce);
    println!("exactly-once  : count = {eos}   (each record reflected exactly once)\n");
    assert_eq!(alos, 6);
    assert_eq!(eos, 3);
    completeness_scenario();
}
