//! Bloomberg MxFlow-style real-time pricing pipeline (§6.1).
//!
//! Market ticks flow through outlier detection, dynamic windowing, and
//! weighted aggregation, with exactly-once processing so "every market bid
//! and ask will be processed without duplication or loss". The example also
//! demonstrates the **state catalog** pattern: interactive queries against
//! the running aggregation state, and reprocessing resilience — a broker is
//! killed mid-stream and the pipeline keeps going.
//!
//! Run with: `cargo run --example bloomberg_pricing`

use kstream_repro::kbroker::{Cluster, Producer, ProducerConfig, TopicConfig};
use kstream_repro::kstreams::{
    KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig, TimeWindows,
};
use kstream_repro::simkit::{DetRng, ManualClock};
use std::sync::Arc;

fn main() {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(3).replication(3).clock(clock.shared()).build();
    cluster.create_topic("market-data", TopicConfig::new(4)).unwrap();
    cluster.create_topic("market-insights", TopicConfig::new(4)).unwrap();

    // Pipeline: outlier detection -> 1s windows -> volume-weighted price.
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, (i64, i64)>("market-data") // key: instrument, value: (price_cents, volume)
        .filter(|instr, (price, _vol)| {
            // Outlier signal detection: drop ticks outside a sane band.
            let sane = (100..=10_000_000).contains(price);
            if !sane {
                println!("  !! outlier dropped: {instr} @ {price}");
            }
            sane
        })
        .group_by_key()
        .windowed_by(TimeWindows::of(1_000).grace(500))
        .aggregate(
            "vwap-state",
            || (0i64, 0i64), // (price*volume sum, volume sum)
            |(price, vol), (pv, v)| (pv + price * vol, v + vol),
        )
        .map_values(|_wk, (pv, v)| if *v == 0 { 0 } else { pv / v })
        .to_stream()
        .to("market-insights");
    let topology = Arc::new(builder.build().unwrap());

    // Two instances, as in a two-pod deployment.
    let config = StreamsConfig::new("mxflow").exactly_once().with_commit_interval_ms(100);
    let mut pods: Vec<KafkaStreamsApp> = (0..2)
        .map(|i| {
            KafkaStreamsApp::new(
                cluster.clone(),
                topology.clone(),
                config.clone(),
                format!("pod-{i}"),
            )
        })
        .collect();
    for pod in &mut pods {
        pod.start().unwrap();
    }

    // Simulated market feed: a few instruments, jittered prices, an
    // occasional bad tick.
    let mut rng = DetRng::new(42);
    let mut feed = Producer::new(cluster.clone(), ProducerConfig::default());
    let instruments = ["AAPL", "MSFT", "TSLA"];
    let mut ticks = 0u64;
    for tick in 0..3_000i64 {
        let instr = instruments[rng.index(instruments.len())];
        let base = 15_000 + rng.range_i64(-500, 500);
        let price = if rng.chance(0.002) { 999_999_999 } else { base }; // rare outlier
        let volume = rng.range_i64(1, 100);
        feed.send(
            "market-data",
            Some(instr.to_string().to_bytes()),
            Some((price, volume).to_bytes()),
            tick,
        )
        .unwrap();
        ticks += 1;
        if tick % 16 == 0 {
            feed.flush().unwrap();
            for pod in &mut pods {
                pod.step().unwrap();
            }
        }
        clock.advance(1);
        if tick == 1_500 {
            println!("\n>> killing broker 0 mid-stream (pod migration scenario)\n");
            cluster.kill_broker(0);
        }
    }
    feed.flush().unwrap();
    for _ in 0..10 {
        for pod in &mut pods {
            pod.step().unwrap();
        }
        clock.advance(100);
    }

    // State-catalog-style interactive query: read the current VWAP state
    // for the latest full window of each instrument.
    println!("=== interactive state queries (the §6.1 state catalog pattern) ===");
    // The last tick landed at ts 2999 -> window [2000, 3000).
    let window = ((3_000 - 1) / 1000) * 1000;
    for instr in instruments {
        for pod in &mut pods {
            if let Some(bytes) =
                pod.query_window("vwap-state", &instr.to_string().to_bytes(), window)
            {
                let (pv, v) = <(i64, i64)>::from_bytes(&bytes).unwrap();
                println!(
                    "{instr}: window[{}s) vwap = {}.{:02} over {v} shares (served by {})",
                    window / 1000,
                    pv / v / 100,
                    pv / v % 100,
                    pod.instance_id(),
                );
            }
        }
    }

    let mut processed = 0;
    for pod in &mut pods {
        processed += pod.metrics().records_processed;
        pod.close().unwrap();
    }
    println!("\nticks produced: {ticks}, records processed: {processed} (across both pods)");
    println!("exactly-once held through the broker failure: no tick lost or duplicated.");
    assert_eq!(processed, ticks, "each tick processed exactly once");
}
