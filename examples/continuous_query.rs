//! Continuous queries, ksqlDB-style (§3.2): a SQL string is compiled into a
//! Kafka-Streams-like topology and runs indefinitely with exactly-once
//! semantics — including the repartition topic the `GROUP BY` implies and
//! revision processing for out-of-order rows.
//!
//! Run with: `cargo run --example continuous_query`

use kstream_repro::kbroker::{
    Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig,
};
use kstream_repro::ksql_mini::{query_to_topology, Row, Value};
use kstream_repro::kstreams::{KSerde, KafkaStreamsApp, StreamsConfig, Windowed};
use kstream_repro::simkit::ManualClock;
use std::sync::Arc;

const QUERY: &str = "SELECT category, COUNT(*) FROM pageviews \
                     WHERE period >= 30000 \
                     WINDOW TUMBLING (5 SECONDS) GRACE (10 SECONDS) \
                     GROUP BY category \
                     EMIT CHANGES \
                     INTO pageview_counts";

fn main() {
    println!("continuous query:\n  {QUERY}\n");
    let topology = Arc::new(query_to_topology(QUERY).expect("valid query"));
    println!("compiled topology (note the GROUP BY repartition, §3.2):");
    print!("{}", topology.describe());

    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(3).replication(3).clock(clock.shared()).build();
    cluster.create_topic("pageviews", TopicConfig::new(2)).unwrap();
    cluster.create_topic("pageview_counts", TopicConfig::new(2)).unwrap();

    let mut app = KafkaStreamsApp::new(
        cluster.clone(),
        topology,
        StreamsConfig::new("ksql").exactly_once().with_commit_interval_ms(50),
        "q0",
    );
    app.start().unwrap();

    let mut producer = Producer::new(cluster.clone(), ProducerConfig::default());
    let views = [
        ("alice", "news", 45_000, 1_000),
        ("bob", "news", 31_000, 2_000),
        ("carol", "sports", 9_000, 2_200), // under 30 s: filtered by WHERE
        ("dave", "sports", 64_000, 2_500),
        ("erin", "news", 52_000, 6_500), // second window
        ("bob", "news", 40_000, 3_000),  // out of order: revises window 1
    ];
    for (user, category, period, ts) in views {
        let row = Row::new()
            .with("category", Value::Str(category.into()))
            .with("period", Value::Int(period));
        producer
            .send("pageviews", Some(user.to_string().to_bytes()), Some(row.to_bytes()), ts)
            .unwrap();
    }
    producer.flush().unwrap();
    for _ in 0..30 {
        app.step().unwrap();
        clock.advance(25);
    }

    println!("\nquery output (every revision, EMIT CHANGES):");
    let mut c =
        Consumer::new(cluster.clone(), "reader", ConsumerConfig::default().read_committed());
    c.assign(cluster.partitions_of("pageview_counts").unwrap()).unwrap();
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            let wk = Windowed::<String>::from_bytes(rec.key.as_ref().unwrap()).unwrap();
            let count = f64::from_bytes(rec.value.as_ref().unwrap()).unwrap();
            println!(
                "  {:<8} window=[{}s,{}s)  count={}",
                wk.key,
                wk.window_start / 1000,
                wk.window_start / 1000 + 5,
                count
            );
        }
    }
    println!("\nrevisions emitted: {}", app.metrics().revisions_emitted);
    app.close().unwrap();
}
