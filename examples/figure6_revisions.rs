//! Figure 6 — revision processing walkthrough, step by step.
//!
//! A single windowed-count task (5-second windows, 10-second grace) receives
//! records at timestamps 12 s, 16 s, 14 s (out of order), 30 s, and then a
//! too-late 12 s. The example prints the store contents and every emitted
//! record after each input, matching the sub-figures:
//!
//! * (a) ts 12 s → window [10,15) count 1 emitted immediately,
//! * (b) ts 16 s → window [15,20) count 1,
//! * (c) ts 14 s (out of order, within grace) → REVISION of [10,15) to 2,
//! * (d) ts 30 s → window [10,15) garbage-collected (grace elapsed),
//! *     late ts 12 s → dropped.
//!
//! Run with: `cargo run --example figure6_revisions`

use kstream_repro::kbroker::{
    Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig,
};
use kstream_repro::kstreams::{
    KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig, TimeWindows, Windowed,
};
use kstream_repro::simkit::ManualClock;
use std::sync::Arc;

fn main() {
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(1).replication(1).clock(clock.shared()).build();
    cluster.create_topic("in", TopicConfig::new(1)).unwrap();
    cluster.create_topic("out", TopicConfig::new(1)).unwrap();

    let builder = StreamsBuilder::new();
    builder
        .stream::<String, String>("in")
        .group_by_key()
        .windowed_by(TimeWindows::of(5_000).grace(10_000))
        .count("window-counts")
        .to_stream()
        .to("out");
    let topology = Arc::new(builder.build().unwrap());
    let mut app = KafkaStreamsApp::new(
        cluster.clone(),
        topology,
        StreamsConfig::new("fig6").exactly_once().with_commit_interval_ms(10),
        "task-1_0",
    );
    app.start().unwrap();

    let mut probe =
        Consumer::new(cluster.clone(), "probe", ConsumerConfig::default().read_committed());
    probe.assign(cluster.partitions_of("out").unwrap()).unwrap();
    let mut producer = Producer::new(cluster.clone(), ProducerConfig::default());

    let steps: [(i64, &str); 5] = [
        (12_000, "(a) in-order record"),
        (16_000, "(b) in-order record, new window"),
        (14_000, "(c) OUT-OF-ORDER record within grace"),
        (30_000, "(d) record advancing stream time past [10,15)+grace"),
        (12_000, "    LATE record for the GC'd window"),
    ];
    for (ts, label) in steps {
        producer
            .send("in", Some("k".to_string().to_bytes()), Some("v".to_string().to_bytes()), ts)
            .unwrap();
        producer.flush().unwrap();
        for _ in 0..3 {
            app.step().unwrap();
            clock.advance(10);
        }
        println!("input ts={:>5}s  {label}", ts / 1000);
        let mut emitted = false;
        for rec in probe.poll().unwrap() {
            let wk = Windowed::<String>::from_bytes(rec.key.as_ref().unwrap()).unwrap();
            let count = i64::from_bytes(rec.value.as_ref().unwrap()).unwrap();
            println!(
                "    -> emitted window[{:>2},{:>2})s = {count}",
                wk.window_start / 1000,
                wk.window_start / 1000 + 5
            );
            emitted = true;
        }
        if !emitted {
            println!("    -> nothing emitted (record dropped)");
        }
        // Peek at the store, like Figure 6's state column.
        let windows: Vec<i64> = [10_000, 15_000, 25_000, 30_000]
            .into_iter()
            .filter(|w| {
                app.query_window("window-counts", &"k".to_string().to_bytes(), *w).is_some()
            })
            .collect();
        println!(
            "    store windows present: {:?}",
            windows.iter().map(|w| format!("[{},{})s", w / 1000, w / 1000 + 5)).collect::<Vec<_>>()
        );
    }
    let m = app.metrics();
    println!(
        "\nmetrics: revisions_emitted={} late_dropped={}",
        m.revisions_emitted, m.late_dropped
    );
    assert_eq!(m.late_dropped, 1, "the final ts=12s record must be dropped");
    assert!(m.revisions_emitted >= 1);
    app.close().unwrap();
}
