//! Quickstart: the paper's running example (Figure 2) end to end.
//!
//! Builds the pageview pipeline — filter, re-key by category, 5-second
//! windowed count — runs it with exactly-once semantics on an in-process
//! 3-broker cluster, and prints the generated topology (Figure 3) and the
//! windowed counts.
//!
//! Run with: `cargo run --example quickstart`

use kstream_repro::kbroker::{
    Cluster, Consumer, ConsumerConfig, Producer, ProducerConfig, TopicConfig,
};
use kstream_repro::kstreams::{
    KSerde, KafkaStreamsApp, StreamsBuilder, StreamsConfig, TimeWindows, Windowed,
};
use kstream_repro::simkit::ManualClock;
use std::sync::Arc;

fn main() {
    // --- Build the topology of Figure 2 -------------------------------
    let builder = StreamsBuilder::new();
    builder
        .stream::<String, (String, i64)>("pageview-events") // key: user, value: (category, view ms)
        .filter(|_user, (_category, period)| *period >= 30_000)
        .map(|_user, (category, period)| (category.clone(), *period))
        .group_by_key()
        .windowed_by(TimeWindows::of(5_000).grace(10_000))
        .count("pageview-counts")
        .to_stream()
        .to("pageview-windowed-counts");
    let topology = Arc::new(builder.build().expect("valid topology"));

    println!("=== Generated topology (compare Figure 3) ===");
    print!("{}", topology.describe());

    // --- Simulated cluster: 3 brokers, replication 3 -------------------
    let clock = ManualClock::new();
    let cluster = Cluster::builder().brokers(3).replication(3).clock(clock.shared()).build();
    cluster.create_topic("pageview-events", TopicConfig::new(2)).unwrap();
    cluster.create_topic("pageview-windowed-counts", TopicConfig::new(3)).unwrap();

    // --- Feed some pageviews -------------------------------------------
    let mut producer = Producer::new(cluster.clone(), ProducerConfig::default());
    let views = [
        ("alice", "news", 45_000, 1_000),
        ("bob", "news", 31_000, 2_000),
        ("carol", "sports", 64_000, 2_500),
        ("alice", "sports", 8_000, 3_000), // under 30 s: filtered out
        ("bob", "news", 52_000, 6_500),    // lands in the second window
    ];
    for (user, category, period, ts) in views {
        producer
            .send(
                "pageview-events",
                Some(user.to_string().to_bytes()),
                Some((category.to_string(), period as i64).to_bytes()),
                ts,
            )
            .unwrap();
    }
    producer.flush().unwrap();

    // --- Run one exactly-once application instance ---------------------
    let mut app = KafkaStreamsApp::new(
        cluster.clone(),
        topology,
        StreamsConfig::new("pageview-app").exactly_once().with_commit_interval_ms(100),
        "instance-0",
    );
    app.start().unwrap();
    println!("\ntasks assigned to this instance: {:?}", app.task_ids());
    for _ in 0..20 {
        app.step().unwrap();
        clock.advance(50);
    }
    app.close().unwrap();

    // --- Read the committed windowed counts ----------------------------
    println!("\n=== pageview-windowed-counts (read committed) ===");
    let mut consumer =
        Consumer::new(cluster.clone(), "reader", ConsumerConfig::default().read_committed());
    consumer.assign(cluster.partitions_of("pageview-windowed-counts").unwrap()).unwrap();
    loop {
        let batch = consumer.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for rec in batch {
            let wk = Windowed::<String>::from_bytes(rec.key.as_ref().unwrap()).unwrap();
            let count = i64::from_bytes(rec.value.as_ref().unwrap()).unwrap();
            println!(
                "category={:<8} window=[{}s,{}s)  count={}",
                wk.key,
                wk.window_start / 1000,
                wk.window_start / 1000 + 5,
                count
            );
        }
    }
}
