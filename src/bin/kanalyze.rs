//! `kanalyze` — run the topology static verifier over example topologies
//! and pretty-print the diagnostics.
//!
//! Builds a set of representative topologies — the paper's Figure 2
//! pipeline plus several deliberately misconfigured variants — verifies
//! each, and prints the findings the way `cargo` prints lints. Exits
//! non-zero if any *error*-severity diagnostic is found in a topology that
//! was expected to be clean.
//!
//! Run with: `cargo run --bin kanalyze`

use kstream_repro::kstreams::analyze::render;
use kstream_repro::kstreams::processor::{Processor, ProcessorContext};
use kstream_repro::kstreams::record::FlowRecord;
use kstream_repro::kstreams::state::{StoreKind, StoreSpec};
use kstream_repro::kstreams::topology::{InternalBuilder, TopicRef, Topology, ValueMode};
use kstream_repro::kstreams::{JoinWindows, KStream, StreamsBuilder, StreamsConfig, TimeWindows};

fn section(title: &str, topology: &Topology) {
    println!("== {title} ==");
    print!("{}", topology.describe());
    println!("verify:");
    print!("{}", render(&topology.verify()));
    println!();
}

struct Nop;
impl Processor for Nop {
    fn process(&mut self, _ctx: &mut ProcessorContext<'_>, _record: FlowRecord) {}
}

fn main() {
    let mut unexpected_errors = 0;

    // --- 1. Figure 2: the paper's running example (clean). -------------
    let b = StreamsBuilder::new();
    b.stream::<String, (String, i64)>("pageview-events")
        .filter(|_user, (_category, period)| *period >= 30_000)
        .map(|_user, (category, period)| (category.clone(), *period))
        .group_by_key()
        .windowed_by(TimeWindows::of(5_000).grace(10_000))
        .count("pageview-counts")
        .to_stream()
        .to("pageview-windowed-counts");
    let t = b.build().expect("valid topology");
    unexpected_errors += t.verify().len();
    section("figure2-pageview-pipeline (expected clean)", &t);

    // --- 2. Re-keyed stream joined without a repartition barrier. -------
    let b = StreamsBuilder::new();
    let clicks: KStream<String, i64> = b.stream("clicks");
    let views: KStream<String, i64> = b.stream("views");
    clicks
        .map(|user: &String, v: &i64| (format!("session-{user}"), *v))
        .join(&views, JoinWindows::of(30_000).grace(5_000), |c, v| c + v)
        .to("click-view-pairs");
    let t = b.build().expect("valid topology");
    section("join-after-rekey (expected: non-co-partitioned-join)", &t);

    // --- 3. Suppress below a zero-grace window. -------------------------
    let b = StreamsBuilder::new();
    b.stream::<String, i64>("sensor-readings")
        .group_by_key()
        .windowed_by(TimeWindows::of(60_000)) // no grace!
        .count("per-minute")
        .suppress_until_window_close()
        .to_stream()
        .to("final-per-minute");
    let t = b.build().expect("valid topology");
    section("suppress-zero-grace (expected: suppress-zero-grace)", &t);

    // --- 4. Changelog-disabled store under exactly-once. ----------------
    let mut ib = InternalBuilder::new();
    let src = ib
        .add_source("src".into(), TopicRef::external("events"), ValueMode::Plain)
        .expect("unique");
    ib.add_store(StoreSpec::new("session-cache", StoreKind::KeyValue).without_changelog())
        .expect("unique");
    ib.add_processor(
        "cache".into(),
        std::sync::Arc::new(|| Box::new(Nop)),
        &[src],
        vec!["session-cache".into()],
    )
    .expect("valid parent");
    let t = ib.build().expect("valid topology");
    println!("== volatile-store-under-eos (expected: changelog-disabled-under-eos) ==");
    print!("{}", t.describe());
    println!("verify_with(exactly_once):");
    print!("{}", render(&t.verify_with(&StreamsConfig::new("kanalyze-demo").exactly_once())));
    println!();

    // --- 5. Unused + undeclared stores, sink feeding its own input. -----
    let mut ib = InternalBuilder::new();
    let src = ib
        .add_source("src".into(), TopicRef::external("loop-topic"), ValueMode::Plain)
        .expect("unique");
    ib.add_store(StoreSpec::new("orphan", StoreKind::KeyValue)).expect("unique");
    let p = ib
        .add_processor(
            "enrich".into(),
            std::sync::Arc::new(|| Box::new(Nop)),
            &[src],
            vec!["ghost".into()],
        )
        .expect("valid parent");
    ib.add_sink("sink".into(), TopicRef::external("loop-topic"), ValueMode::Plain, &[p])
        .expect("valid parent");
    let t = ib.build().expect("valid topology");
    section("store-misuse-and-feedback (expected: unused-store, undeclared-store, sink-feeds-own-subtopology)", &t);

    if unexpected_errors > 0 {
        eprintln!("kanalyze: {unexpected_errors} unexpected diagnostic(s) in clean topologies");
        std::process::exit(1);
    }
    println!("kanalyze: done");
}
