//! # kstream-repro — meta-crate
//!
//! Rust reproduction of *"Consistency and Completeness: Rethinking
//! Distributed Stream Processing in Apache Kafka"* (Wang et al., SIGMOD '21).
//!
//! This crate re-exports the workspace's public API so examples and
//! integration tests can use one import root:
//!
//! * [`klog`] — partition-log substrate (batches, watermarks, compaction,
//!   idempotence state),
//! * [`kbroker`] — in-process broker cluster (replication, transactions,
//!   consumer groups, clients),
//! * [`kstreams`] — the streams library (DSL, topology, tasks, state stores,
//!   exactly-once, revision processing),
//! * [`ksql_mini`] — a miniature ksqlDB: continuous SQL-ish queries
//!   compiled to `kstreams` topologies (§3.2),
//! * [`ckpt_baseline`] — the Flink-style aligned-checkpoint comparator,
//! * [`simkit`] — clocks, fault injection, measurement.

pub use ckpt_baseline;
pub use kbroker;
pub use klog;
pub use ksql_mini;
pub use kstreams;
pub use simkit;
